//! Runtime-dispatched SIMD backends for the hot `*_into` kernels.
//!
//! Every kernel in this crate has one semantic definition — a scalar op
//! sequence per output element — and up to three implementations of it:
//!
//! * **Scalar** — the always-available fallback, plain Rust loops.
//! * **Avx2** — 8-lane `f32x8` kernels via `core::arch::x86_64` intrinsics.
//! * **Avx512** — 16-lane register-blocked matmul rows; every other
//!   primitive reuses the AVX2 implementation (elementwise ops are
//!   memory-bound and reductions have a fixed lane structure, see below).
//!
//! **Bit-identity contract.** The vector backends are not "close" to the
//! scalar backend — they are *bit-identical*, by construction:
//!
//! * Kernels vectorised across independent output elements (matmul rows,
//!   elementwise ops, broadcasts) perform exactly the same IEEE-754
//!   `mul`/`add`/`div` per element in exactly the same order as the scalar
//!   loop; lane width cannot be observed. No FMA is used anywhere — a fused
//!   multiply-add rounds differently, and `f32::mul_add` in the scalar
//!   mirror would fall back to a slow soft-float libm call on baseline
//!   x86-64 builds.
//! * Kernels that reduce *across* elements (`dot`, row max/sum for softmax)
//!   have a **fixed virtual lane structure** that is part of their
//!   definition: `dot` accumulates into 32 stride-32 partial sums and
//!   reduces them in a fixed tree order; row max/sum use 8 stride-8 lanes.
//!   The scalar fallback implements that exact structure with plain arrays,
//!   so scalar and vector runs agree bitwise — and so do AVX2 and AVX-512
//!   machines, because the lane structure never widens with the hardware.
//!
//! **Dispatch.** [`backend()`] resolves once per kernel call on the caller
//! thread (so a scoped override travels into pool workers with the task
//! closure): a thread-local override installed by [`with_backend`] (tests,
//! benches), else the process-wide detection — `IMRE_FORCE_SCALAR=1` or
//! `IMRE_SIMD=scalar|avx2|avx512` caps it, otherwise the best instruction
//! set the CPU reports. Per-backend dispatch counters ([`vector_kernels`] /
//! [`scalar_kernels`]) let tests and CI assert the vector path was actually
//! taken on capable hardware, and that forcing the scalar fallback works.
//!
//! **Alignment.** Vector loads/stores are unaligned (`loadu`/`storeu`);
//! correctness never depends on buffer alignment. Cache-line considerations
//! live in [`crate::pool::for_rows`], which rounds row grains so parallel
//! shards cover whole 64-byte lines wherever the column count permits.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One of the available kernel implementations. Ordered by capability.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Backend {
    /// Plain Rust loops; always available, bit-identical to the vector paths.
    Scalar,
    /// 8-lane AVX2 kernels (x86-64 with `avx2`).
    Avx2,
    /// 16-lane matmul rows (x86-64 with `avx512f`; implies the AVX2 tier).
    Avx512,
}

impl Backend {
    /// Human-readable name, for logs and bench output.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }
}

/// Best backend the hardware supports, ignoring environment overrides.
pub fn hardware_backend() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx2") {
            return Backend::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    Backend::Scalar
}

static DETECTED: OnceLock<Backend> = OnceLock::new();

fn detect() -> Backend {
    let cap = match std::env::var("IMRE_SIMD").as_deref() {
        Ok("scalar") => Backend::Scalar,
        Ok("avx2") => Backend::Avx2,
        Ok("avx512") => Backend::Avx512,
        _ => {
            if std::env::var("IMRE_FORCE_SCALAR").as_deref() == Ok("1") {
                Backend::Scalar
            } else {
                Backend::Avx512
            }
        }
    };
    cap.min(hardware_backend())
}

thread_local! {
    static OVERRIDE: Cell<Option<Backend>> = const { Cell::new(None) };
}

/// The backend kernels on this thread will dispatch to: a scoped
/// [`with_backend`] override, else the process-wide detection
/// (`IMRE_FORCE_SCALAR` / `IMRE_SIMD` capped to what the CPU supports).
///
/// Kernels resolve this once at entry on the caller thread and carry the
/// value into their task closures, so an override is honored even when the
/// work runs on pool worker threads.
pub fn backend() -> Backend {
    OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(|| *DETECTED.get_or_init(detect))
}

/// Runs `f` with kernels on this thread pinned to `be` (capped to what the
/// hardware supports — requesting `Avx512` on an AVX2-only box runs AVX2).
/// Used by the bit-identity proptests and the kernel benches to compare
/// backends within one process.
pub fn with_backend<R>(be: Backend, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Backend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let be = be.min(hardware_backend());
    let prev = OVERRIDE.with(|c| c.replace(Some(be)));
    let _restore = Restore(prev);
    f()
}

static VECTOR_KERNELS: AtomicU64 = AtomicU64::new(0);
static SCALAR_KERNELS: AtomicU64 = AtomicU64::new(0);

/// Counts one kernel-level dispatch decision; called at kernel entry.
#[inline]
pub(crate) fn note(be: Backend) {
    match be {
        Backend::Scalar => SCALAR_KERNELS.fetch_add(1, Ordering::Relaxed),
        _ => VECTOR_KERNELS.fetch_add(1, Ordering::Relaxed),
    };
}

/// Process-wide count of kernel calls that took a vector (AVX2/AVX-512)
/// path. Monotone; tests assert deltas, not absolutes.
pub fn vector_kernels() -> u64 {
    VECTOR_KERNELS.load(Ordering::Relaxed)
}

/// Process-wide count of kernel calls that took the scalar fallback.
pub fn scalar_kernels() -> u64 {
    SCALAR_KERNELS.load(Ordering::Relaxed)
}

// ----------------------------------------------------------------------
// Elementwise primitives (vectorised across independent elements)
// ----------------------------------------------------------------------

/// Elementwise binary operation selector for [`ew`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum EwOp {
    Add,
    Sub,
    Mul,
    Div,
}

#[inline(always)]
fn ew_scalar_one(op: EwOp, x: f32, y: f32) -> f32 {
    match op {
        EwOp::Add => x + y,
        EwOp::Sub => x - y,
        EwOp::Mul => x * y,
        EwOp::Div => x / y,
    }
}

/// `out[i] = a[i] op b[i]`; fully overwrites `out`.
pub(crate) fn ew(be: Backend, op: EwOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if be != Backend::Scalar {
        // SAFETY: backend() only reports Avx2/Avx512 when the CPU has avx2.
        unsafe { ew_avx2(op, a, b, out) };
        return;
    }
    let _ = be;
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = ew_scalar_one(op, x, y);
    }
}

/// `dst[i] += src[i]` in place.
pub(crate) fn add_assign(be: Backend, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if be != Backend::Scalar {
        // SAFETY: vector backends imply avx2 support (see `backend()`).
        unsafe { add_assign_avx2(dst, src) };
        return;
    }
    let _ = be;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst[i] += alpha * src[i]` (unfused mul-then-add, as in the scalar axpy).
pub(crate) fn axpy(be: Backend, dst: &mut [f32], alpha: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if be != Backend::Scalar {
        // SAFETY: vector backends imply avx2 support (see `backend()`).
        unsafe { axpy_avx2(dst, alpha, src) };
        return;
    }
    let _ = be;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += alpha * s;
    }
}

/// `out[i] = a[i] * s`; fully overwrites `out`.
pub(crate) fn scale(be: Backend, a: &[f32], s: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if be != Backend::Scalar {
        // SAFETY: vector backends imply avx2 support (see `backend()`).
        unsafe { scale_avx2(a, s, out) };
        return;
    }
    let _ = be;
    for (o, &x) in out.iter_mut().zip(a) {
        *o = x * s;
    }
}

/// `xs[i] /= z` in place (softmax normalisation).
pub(crate) fn div_inplace(be: Backend, xs: &mut [f32], z: f32) {
    #[cfg(target_arch = "x86_64")]
    if be != Backend::Scalar {
        // SAFETY: vector backends imply avx2 support (see `backend()`).
        unsafe { div_inplace_avx2(xs, z) };
        return;
    }
    let _ = be;
    for x in xs {
        *x /= z;
    }
}

// ----------------------------------------------------------------------
// Lane-structured reductions (fixed virtual width, hardware-independent)
// ----------------------------------------------------------------------

/// Virtual lane count of the `dot` accumulator structure.
const DOT_LANES: usize = 32;
/// Virtual lane count of the row max/sum structure.
const ROW_LANES: usize = 8;

/// `max_ps(a, b)` semantics: `a` if `a > b`, else `b` (ties and NaN take
/// `b`). Shared by the scalar mirror and the vector tail so both fold
/// identically.
#[inline(always)]
fn maxps(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// Dot product with the fixed 32-lane accumulator structure.
pub(crate) fn dot(be: Backend, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if be != Backend::Scalar {
        // SAFETY: vector backends imply avx2 support (see `backend()`).
        return unsafe { dot_avx2(a, b) };
    }
    let _ = be;
    dot_scalar(a, b)
}

/// Scalar mirror of the 32-lane dot: stride-32 partial sums, pairwise
/// 32→8 fold, then the 8-lane tree the AVX horizontal sum performs.
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let blocks = n / DOT_LANES;
    let mut acc = [0.0f32; DOT_LANES];
    for i in 0..blocks {
        let base = i * DOT_LANES;
        for (w, aw) in acc.iter_mut().enumerate() {
            *aw += a[base + w] * b[base + w];
        }
    }
    let mut s = hsum8_tree(core::array::from_fn(|j| {
        (acc[j] + acc[j + 8]) + (acc[j + 16] + acc[j + 24])
    }));
    for i in blocks * DOT_LANES..n {
        s += a[i] * b[i];
    }
    s
}

/// The fixed 8-lane horizontal-sum tree (the `vextractf128`/`movehl`/
/// `shuffle` order of the AVX reduction).
#[inline(always)]
fn hsum8_tree(t: [f32; 8]) -> f32 {
    ((t[0] + t[4]) + (t[2] + t[6])) + ((t[1] + t[5]) + (t[3] + t[7]))
}

/// The fixed 8-lane horizontal-max tree, with [`maxps`] at every node.
#[inline(always)]
fn hmax8_tree(t: [f32; 8]) -> f32 {
    maxps(
        maxps(maxps(t[0], t[4]), maxps(t[2], t[6])),
        maxps(maxps(t[1], t[5]), maxps(t[3], t[7])),
    )
}

/// Maximum of a slice with the fixed 8-lane structure (`-inf` for empty).
pub(crate) fn row_max(be: Backend, xs: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if be != Backend::Scalar {
        // SAFETY: vector backends imply avx2 support (see `backend()`).
        return unsafe { row_max_avx2(xs) };
    }
    let _ = be;
    row_max_scalar(xs)
}

fn row_max_scalar(xs: &[f32]) -> f32 {
    let blocks = xs.len() / ROW_LANES;
    let mut acc = [f32::NEG_INFINITY; ROW_LANES];
    for i in 0..blocks {
        let base = i * ROW_LANES;
        for (w, aw) in acc.iter_mut().enumerate() {
            *aw = maxps(*aw, xs[base + w]);
        }
    }
    let mut m = hmax8_tree(acc);
    for &x in &xs[blocks * ROW_LANES..] {
        m = maxps(m, x);
    }
    m
}

/// Sum of a slice with the fixed 8-lane structure (0 for empty).
pub(crate) fn row_sum(be: Backend, xs: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if be != Backend::Scalar {
        // SAFETY: vector backends imply avx2 support (see `backend()`).
        return unsafe { row_sum_avx2(xs) };
    }
    let _ = be;
    row_sum_scalar(xs)
}

fn row_sum_scalar(xs: &[f32]) -> f32 {
    let blocks = xs.len() / ROW_LANES;
    let mut acc = [0.0f32; ROW_LANES];
    for i in 0..blocks {
        let base = i * ROW_LANES;
        for (w, aw) in acc.iter_mut().enumerate() {
            *aw += xs[base + w];
        }
    }
    let mut s = hsum8_tree(acc);
    for &x in &xs[blocks * ROW_LANES..] {
        s += x;
    }
    s
}

// ----------------------------------------------------------------------
// Register-blocked matmul row kernel
// ----------------------------------------------------------------------

/// Accumulates `out[j] += sum_l a[a_off + l*a_stride] * b[l*n + j]` for one
/// output row, ascending `l` per element — the exact per-element op
/// sequence of the scalar `ikj` kernel. `a_stride = 1` walks a row of `a`
/// (plain matmul); `a_stride = m` walks a column (`aᵀ·b`).
///
/// The vector paths hold a tile of the output row in registers (6×f32x8 on
/// AVX2, 4×f32x16 on AVX-512) and stream rows of `b` through it, so each
/// output element is loaded and stored exactly once per call.
#[allow(clippy::too_many_arguments)]
pub(crate) fn row_times_mat(
    be: Backend,
    a: &[f32],
    a_off: usize,
    a_stride: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), n);
    debug_assert!(k == 0 || a_off + (k - 1) * a_stride < a.len());
    debug_assert!(b.len() >= k * n);
    match be {
        Backend::Scalar => row_times_mat_scalar(a, a_off, a_stride, k, b, n, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: vector backends imply the matching CPU features.
        Backend::Avx2 => unsafe { row_times_mat_avx2(a, a_off, a_stride, k, b, n, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx512 is only reported when avx512f is detected.
        Backend::Avx512 => unsafe { row_times_mat_avx512(a, a_off, a_stride, k, b, n, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => row_times_mat_scalar(a, a_off, a_stride, k, b, n, out),
    }
}

/// Accumulates a block of `nrows` consecutive output rows, where row `r`
/// reads `a` starting at `a_off + r*a_row_step` with stride `a_stride` and
/// writes `out[r*n .. (r+1)*n]`:
///
/// `out[r*n + j] += Σ_l a[a_off + r*a_row_step + l*a_stride] · b[l*n + j]`
///
/// Semantically this is `nrows` independent [`row_times_mat`] calls — and
/// on the scalar backend it is exactly that. The vector backends process
/// rows in groups of four so every `b` vector load is reused by four
/// output rows (register blocking in the M dimension, quartering the `b`
/// stream traffic that dominates the single-row kernel); each output
/// element still accumulates in ascending-`l` order in its own register
/// lane, so the row grouping is invisible in the bits.
///
/// `matmul` passes `a_row_step = k, a_stride = 1` (consecutive rows of
/// `a`); `matmul_tn` passes `a_row_step = 1, a_stride = m` (consecutive
/// columns).
#[allow(clippy::too_many_arguments)]
pub(crate) fn rows_times_mat(
    be: Backend,
    a: &[f32],
    a_off: usize,
    a_row_step: usize,
    a_stride: usize,
    nrows: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), nrows * n);
    let mut r = 0;
    #[cfg(target_arch = "x86_64")]
    if be != Backend::Scalar {
        while r + 4 <= nrows {
            let offs = [
                a_off + r * a_row_step,
                a_off + (r + 1) * a_row_step,
                a_off + (r + 2) * a_row_step,
                a_off + (r + 3) * a_row_step,
            ];
            let chunk = &mut out[r * n..(r + 4) * n];
            // SAFETY: vector backends imply the matching CPU features.
            unsafe {
                if be == Backend::Avx512 {
                    rows4_times_mat_avx512(a, offs, a_stride, k, b, n, chunk);
                } else {
                    rows4_times_mat_avx2(a, offs, a_stride, k, b, n, chunk);
                }
            }
            r += 4;
        }
    }
    for rr in r..nrows {
        row_times_mat(
            be,
            a,
            a_off + rr * a_row_step,
            a_stride,
            k,
            b,
            n,
            &mut out[rr * n..(rr + 1) * n],
        );
    }
}

/// Scalar reference: the `ikj` rank-1-update sweep, cache-blocked over the
/// reduction in `KC`-sized panels. Per element the accumulation is still
/// plain ascending `l` (blocks are visited in order), so blocking is
/// invisible in the bits.
fn row_times_mat_scalar(
    a: &[f32],
    a_off: usize,
    a_stride: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    /// Reduction block: `KC × n` floats of `b` stay hot in L1/L2.
    const KC: usize = 128;
    for k0 in (0..k).step_by(KC) {
        let k1 = (k0 + KC).min(k);
        for l in k0..k1 {
            let al = a[a_off + l * a_stride];
            let brow = &b[l * n..(l + 1) * n];
            for (oj, &bj) in out.iter_mut().zip(brow) {
                *oj += al * bj;
            }
        }
    }
}

// ----------------------------------------------------------------------
// x86-64 vector implementations
// ----------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{hmax8_tree, hsum8_tree, maxps, EwOp, DOT_LANES, ROW_LANES};
    use core::arch::x86_64::*;

    /// # Safety
    /// Requires AVX2. Slices must satisfy the caller's length contracts.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn ew_avx2(op: EwOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let (ap, bp, op_) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let va = _mm256_loadu_ps(ap.add(i));
            let vb = _mm256_loadu_ps(bp.add(i));
            let v = match op {
                EwOp::Add => _mm256_add_ps(va, vb),
                EwOp::Sub => _mm256_sub_ps(va, vb),
                EwOp::Mul => _mm256_mul_ps(va, vb),
                EwOp::Div => _mm256_div_ps(va, vb),
            };
            _mm256_storeu_ps(op_.add(i), v);
            i += 8;
        }
        for j in i..n {
            out[j] = super::ew_scalar_one(op, a[j], b[j]);
        }
    }

    /// # Safety
    /// Requires AVX2; `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign_avx2(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_add_ps(_mm256_loadu_ps(dp.add(i)), _mm256_loadu_ps(sp.add(i)));
            _mm256_storeu_ps(dp.add(i), v);
            i += 8;
        }
        for j in i..n {
            dst[j] += src[j];
        }
    }

    /// # Safety
    /// Requires AVX2; `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(dst: &mut [f32], alpha: f32, src: &[f32]) {
        let n = dst.len();
        let va = _mm256_set1_ps(alpha);
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_add_ps(
                _mm256_loadu_ps(dp.add(i)),
                _mm256_mul_ps(va, _mm256_loadu_ps(sp.add(i))),
            );
            _mm256_storeu_ps(dp.add(i), v);
            i += 8;
        }
        for j in i..n {
            dst[j] += alpha * src[j];
        }
    }

    /// # Safety
    /// Requires AVX2; `a.len() == out.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_avx2(a: &[f32], s: f32, out: &mut [f32]) {
        let n = out.len();
        let vs = _mm256_set1_ps(s);
        let (ap, op_) = (a.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(op_.add(i), _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), vs));
            i += 8;
        }
        for j in i..n {
            out[j] = a[j] * s;
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn div_inplace_avx2(xs: &mut [f32], z: f32) {
        let n = xs.len();
        let vz = _mm256_set1_ps(z);
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(p.add(i), _mm256_div_ps(_mm256_loadu_ps(p.add(i)), vz));
            i += 8;
        }
        for x in xs.iter_mut().skip(i) {
            *x /= z;
        }
    }

    /// The 8-lane horizontal sum in the fixed tree order of
    /// [`hsum8_tree`]: low+high 128-bit halves, `movehl`, then lane 1.
    #[inline(always)]
    unsafe fn hsum8(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s4 = _mm_add_ps(lo, hi);
        let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
        let s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x55));
        _mm_cvtss_f32(s1)
    }

    /// The 8-lane horizontal max in the same fixed tree order.
    #[inline(always)]
    unsafe fn hmax8(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s4 = _mm_max_ps(lo, hi);
        let s2 = _mm_max_ps(s4, _mm_movehl_ps(s4, s4));
        let s1 = _mm_max_ss(s2, _mm_shuffle_ps(s2, s2, 0x55));
        _mm_cvtss_f32(s1)
    }

    /// # Safety
    /// Requires AVX2; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let blocks = n / DOT_LANES;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut c2 = _mm256_setzero_ps();
        let mut c3 = _mm256_setzero_ps();
        for i in 0..blocks {
            let base = i * DOT_LANES;
            c0 = _mm256_add_ps(
                c0,
                _mm256_mul_ps(_mm256_loadu_ps(ap.add(base)), _mm256_loadu_ps(bp.add(base))),
            );
            c1 = _mm256_add_ps(
                c1,
                _mm256_mul_ps(
                    _mm256_loadu_ps(ap.add(base + 8)),
                    _mm256_loadu_ps(bp.add(base + 8)),
                ),
            );
            c2 = _mm256_add_ps(
                c2,
                _mm256_mul_ps(
                    _mm256_loadu_ps(ap.add(base + 16)),
                    _mm256_loadu_ps(bp.add(base + 16)),
                ),
            );
            c3 = _mm256_add_ps(
                c3,
                _mm256_mul_ps(
                    _mm256_loadu_ps(ap.add(base + 24)),
                    _mm256_loadu_ps(bp.add(base + 24)),
                ),
            );
        }
        // 32 → 8 lanes: (c0+c1) + (c2+c3), lane j = (v[j]+v[j+8]) + (v[j+16]+v[j+24]).
        let t = _mm256_add_ps(_mm256_add_ps(c0, c1), _mm256_add_ps(c2, c3));
        let mut s = hsum8(t);
        for i in blocks * DOT_LANES..n {
            s += a[i] * b[i];
        }
        s
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_max_avx2(xs: &[f32]) -> f32 {
        let n = xs.len();
        let blocks = n / ROW_LANES;
        let p = xs.as_ptr();
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        for i in 0..blocks {
            acc = _mm256_max_ps(acc, _mm256_loadu_ps(p.add(i * ROW_LANES)));
        }
        let mut m = hmax8(acc);
        for &x in &xs[blocks * ROW_LANES..] {
            m = maxps(m, x);
        }
        m
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_sum_avx2(xs: &[f32]) -> f32 {
        let n = xs.len();
        let blocks = n / ROW_LANES;
        let p = xs.as_ptr();
        let mut acc = _mm256_setzero_ps();
        for i in 0..blocks {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(p.add(i * ROW_LANES)));
        }
        let mut s = hsum8(acc);
        for &x in &xs[blocks * ROW_LANES..] {
            s += x;
        }
        s
    }

    /// # Safety
    /// Requires AVX2; bounds as in [`super::row_times_mat`].
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn row_times_mat_avx2(
        a: &[f32],
        a_off: usize,
        a_stride: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let ap = a.as_ptr().add(a_off);
        let bp = b.as_ptr();
        let op_ = out.as_mut_ptr();
        let mut j = 0;
        // 48-wide register tile: 6 accumulators live across the whole
        // reduction; each output element is loaded/stored exactly once.
        while j + 48 <= n {
            let o = op_.add(j);
            let mut c0 = _mm256_loadu_ps(o);
            let mut c1 = _mm256_loadu_ps(o.add(8));
            let mut c2 = _mm256_loadu_ps(o.add(16));
            let mut c3 = _mm256_loadu_ps(o.add(24));
            let mut c4 = _mm256_loadu_ps(o.add(32));
            let mut c5 = _mm256_loadu_ps(o.add(40));
            for l in 0..k {
                let va = _mm256_set1_ps(*ap.add(l * a_stride));
                let br = bp.add(l * n + j);
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(va, _mm256_loadu_ps(br)));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(va, _mm256_loadu_ps(br.add(8))));
                c2 = _mm256_add_ps(c2, _mm256_mul_ps(va, _mm256_loadu_ps(br.add(16))));
                c3 = _mm256_add_ps(c3, _mm256_mul_ps(va, _mm256_loadu_ps(br.add(24))));
                c4 = _mm256_add_ps(c4, _mm256_mul_ps(va, _mm256_loadu_ps(br.add(32))));
                c5 = _mm256_add_ps(c5, _mm256_mul_ps(va, _mm256_loadu_ps(br.add(40))));
            }
            _mm256_storeu_ps(o, c0);
            _mm256_storeu_ps(o.add(8), c1);
            _mm256_storeu_ps(o.add(16), c2);
            _mm256_storeu_ps(o.add(24), c3);
            _mm256_storeu_ps(o.add(32), c4);
            _mm256_storeu_ps(o.add(40), c5);
            j += 48;
        }
        while j + 8 <= n {
            let o = op_.add(j);
            let mut c0 = _mm256_loadu_ps(o);
            for l in 0..k {
                let va = _mm256_set1_ps(*ap.add(l * a_stride));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(l * n + j))));
            }
            _mm256_storeu_ps(o, c0);
            j += 8;
        }
        for jj in j..n {
            let mut s = out[jj];
            for l in 0..k {
                s += *ap.add(l * a_stride) * b[l * n + jj];
            }
            out[jj] = s;
        }
    }

    /// # Safety
    /// Requires AVX-512F; bounds as in [`super::row_times_mat`].
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn row_times_mat_avx512(
        a: &[f32],
        a_off: usize,
        a_stride: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let ap = a.as_ptr().add(a_off);
        let bp = b.as_ptr();
        let op_ = out.as_mut_ptr();
        let mut j = 0;
        // 64-wide register tile: 4 zmm accumulators across the reduction.
        while j + 64 <= n {
            let o = op_.add(j);
            let mut c0 = _mm512_loadu_ps(o);
            let mut c1 = _mm512_loadu_ps(o.add(16));
            let mut c2 = _mm512_loadu_ps(o.add(32));
            let mut c3 = _mm512_loadu_ps(o.add(48));
            for l in 0..k {
                let va = _mm512_set1_ps(*ap.add(l * a_stride));
                let br = bp.add(l * n + j);
                c0 = _mm512_add_ps(c0, _mm512_mul_ps(va, _mm512_loadu_ps(br)));
                c1 = _mm512_add_ps(c1, _mm512_mul_ps(va, _mm512_loadu_ps(br.add(16))));
                c2 = _mm512_add_ps(c2, _mm512_mul_ps(va, _mm512_loadu_ps(br.add(32))));
                c3 = _mm512_add_ps(c3, _mm512_mul_ps(va, _mm512_loadu_ps(br.add(48))));
            }
            _mm512_storeu_ps(o, c0);
            _mm512_storeu_ps(o.add(16), c1);
            _mm512_storeu_ps(o.add(32), c2);
            _mm512_storeu_ps(o.add(48), c3);
            j += 64;
        }
        while j + 16 <= n {
            let o = op_.add(j);
            let mut c0 = _mm512_loadu_ps(o);
            for l in 0..k {
                let va = _mm512_set1_ps(*ap.add(l * a_stride));
                c0 = _mm512_add_ps(c0, _mm512_mul_ps(va, _mm512_loadu_ps(bp.add(l * n + j))));
            }
            _mm512_storeu_ps(o, c0);
            j += 16;
        }
        for jj in j..n {
            let mut s = out[jj];
            for l in 0..k {
                s += *ap.add(l * a_stride) * b[l * n + jj];
            }
            out[jj] = s;
        }
    }

    /// Four output rows at once, 4×16 register tile: 8 ymm accumulators
    /// stay live across the whole reduction and every 8-lane load of `b`
    /// feeds all four rows. Each element's own accumulator chain is still
    /// ascending-`l` — bit-identical to four single-row calls.
    ///
    /// # Safety
    /// Requires AVX2; `offs[r] + (k-1)*a_stride` in bounds, `out.len() == 4n`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn rows4_times_mat_avx2(
        a: &[f32],
        offs: [usize; 4],
        a_stride: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let a0 = ap.add(offs[0]);
        let a1 = ap.add(offs[1]);
        let a2 = ap.add(offs[2]);
        let a3 = ap.add(offs[3]);
        let bp = b.as_ptr();
        let op_ = out.as_mut_ptr();
        let mut j = 0;
        while j + 16 <= n {
            let mut c00 = _mm256_loadu_ps(op_.add(j));
            let mut c01 = _mm256_loadu_ps(op_.add(j + 8));
            let mut c10 = _mm256_loadu_ps(op_.add(n + j));
            let mut c11 = _mm256_loadu_ps(op_.add(n + j + 8));
            let mut c20 = _mm256_loadu_ps(op_.add(2 * n + j));
            let mut c21 = _mm256_loadu_ps(op_.add(2 * n + j + 8));
            let mut c30 = _mm256_loadu_ps(op_.add(3 * n + j));
            let mut c31 = _mm256_loadu_ps(op_.add(3 * n + j + 8));
            for l in 0..k {
                let br = bp.add(l * n + j);
                let b0 = _mm256_loadu_ps(br);
                let b1 = _mm256_loadu_ps(br.add(8));
                let s = l * a_stride;
                let va0 = _mm256_set1_ps(*a0.add(s));
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(va0, b0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(va0, b1));
                let va1 = _mm256_set1_ps(*a1.add(s));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(va1, b0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(va1, b1));
                let va2 = _mm256_set1_ps(*a2.add(s));
                c20 = _mm256_add_ps(c20, _mm256_mul_ps(va2, b0));
                c21 = _mm256_add_ps(c21, _mm256_mul_ps(va2, b1));
                let va3 = _mm256_set1_ps(*a3.add(s));
                c30 = _mm256_add_ps(c30, _mm256_mul_ps(va3, b0));
                c31 = _mm256_add_ps(c31, _mm256_mul_ps(va3, b1));
            }
            _mm256_storeu_ps(op_.add(j), c00);
            _mm256_storeu_ps(op_.add(j + 8), c01);
            _mm256_storeu_ps(op_.add(n + j), c10);
            _mm256_storeu_ps(op_.add(n + j + 8), c11);
            _mm256_storeu_ps(op_.add(2 * n + j), c20);
            _mm256_storeu_ps(op_.add(2 * n + j + 8), c21);
            _mm256_storeu_ps(op_.add(3 * n + j), c30);
            _mm256_storeu_ps(op_.add(3 * n + j + 8), c31);
            j += 16;
        }
        while j + 8 <= n {
            let mut c0 = _mm256_loadu_ps(op_.add(j));
            let mut c1 = _mm256_loadu_ps(op_.add(n + j));
            let mut c2 = _mm256_loadu_ps(op_.add(2 * n + j));
            let mut c3 = _mm256_loadu_ps(op_.add(3 * n + j));
            for l in 0..k {
                let b0 = _mm256_loadu_ps(bp.add(l * n + j));
                let s = l * a_stride;
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(*a0.add(s)), b0));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(*a1.add(s)), b0));
                c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(*a2.add(s)), b0));
                c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(*a3.add(s)), b0));
            }
            _mm256_storeu_ps(op_.add(j), c0);
            _mm256_storeu_ps(op_.add(n + j), c1);
            _mm256_storeu_ps(op_.add(2 * n + j), c2);
            _mm256_storeu_ps(op_.add(3 * n + j), c3);
            j += 8;
        }
        for (r, ar) in [a0, a1, a2, a3].into_iter().enumerate() {
            for jj in j..n {
                let mut s = out[r * n + jj];
                for l in 0..k {
                    s += *ar.add(l * a_stride) * b[l * n + jj];
                }
                out[r * n + jj] = s;
            }
        }
    }

    /// Four output rows at once, 4×32 register tile: 8 zmm accumulators,
    /// every 16-lane load of `b` reused by all four rows. Same ascending-`l`
    /// per-element chains as the scalar kernel.
    ///
    /// # Safety
    /// Requires AVX-512F; bounds as in [`rows4_times_mat_avx2`].
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn rows4_times_mat_avx512(
        a: &[f32],
        offs: [usize; 4],
        a_stride: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let a0 = ap.add(offs[0]);
        let a1 = ap.add(offs[1]);
        let a2 = ap.add(offs[2]);
        let a3 = ap.add(offs[3]);
        let bp = b.as_ptr();
        let op_ = out.as_mut_ptr();
        let mut j = 0;
        while j + 32 <= n {
            let mut c00 = _mm512_loadu_ps(op_.add(j));
            let mut c01 = _mm512_loadu_ps(op_.add(j + 16));
            let mut c10 = _mm512_loadu_ps(op_.add(n + j));
            let mut c11 = _mm512_loadu_ps(op_.add(n + j + 16));
            let mut c20 = _mm512_loadu_ps(op_.add(2 * n + j));
            let mut c21 = _mm512_loadu_ps(op_.add(2 * n + j + 16));
            let mut c30 = _mm512_loadu_ps(op_.add(3 * n + j));
            let mut c31 = _mm512_loadu_ps(op_.add(3 * n + j + 16));
            for l in 0..k {
                let br = bp.add(l * n + j);
                let b0 = _mm512_loadu_ps(br);
                let b1 = _mm512_loadu_ps(br.add(16));
                let s = l * a_stride;
                let va0 = _mm512_set1_ps(*a0.add(s));
                c00 = _mm512_add_ps(c00, _mm512_mul_ps(va0, b0));
                c01 = _mm512_add_ps(c01, _mm512_mul_ps(va0, b1));
                let va1 = _mm512_set1_ps(*a1.add(s));
                c10 = _mm512_add_ps(c10, _mm512_mul_ps(va1, b0));
                c11 = _mm512_add_ps(c11, _mm512_mul_ps(va1, b1));
                let va2 = _mm512_set1_ps(*a2.add(s));
                c20 = _mm512_add_ps(c20, _mm512_mul_ps(va2, b0));
                c21 = _mm512_add_ps(c21, _mm512_mul_ps(va2, b1));
                let va3 = _mm512_set1_ps(*a3.add(s));
                c30 = _mm512_add_ps(c30, _mm512_mul_ps(va3, b0));
                c31 = _mm512_add_ps(c31, _mm512_mul_ps(va3, b1));
            }
            _mm512_storeu_ps(op_.add(j), c00);
            _mm512_storeu_ps(op_.add(j + 16), c01);
            _mm512_storeu_ps(op_.add(n + j), c10);
            _mm512_storeu_ps(op_.add(n + j + 16), c11);
            _mm512_storeu_ps(op_.add(2 * n + j), c20);
            _mm512_storeu_ps(op_.add(2 * n + j + 16), c21);
            _mm512_storeu_ps(op_.add(3 * n + j), c30);
            _mm512_storeu_ps(op_.add(3 * n + j + 16), c31);
            j += 32;
        }
        while j + 16 <= n {
            let mut c0 = _mm512_loadu_ps(op_.add(j));
            let mut c1 = _mm512_loadu_ps(op_.add(n + j));
            let mut c2 = _mm512_loadu_ps(op_.add(2 * n + j));
            let mut c3 = _mm512_loadu_ps(op_.add(3 * n + j));
            for l in 0..k {
                let b0 = _mm512_loadu_ps(bp.add(l * n + j));
                let s = l * a_stride;
                c0 = _mm512_add_ps(c0, _mm512_mul_ps(_mm512_set1_ps(*a0.add(s)), b0));
                c1 = _mm512_add_ps(c1, _mm512_mul_ps(_mm512_set1_ps(*a1.add(s)), b0));
                c2 = _mm512_add_ps(c2, _mm512_mul_ps(_mm512_set1_ps(*a2.add(s)), b0));
                c3 = _mm512_add_ps(c3, _mm512_mul_ps(_mm512_set1_ps(*a3.add(s)), b0));
            }
            _mm512_storeu_ps(op_.add(j), c0);
            _mm512_storeu_ps(op_.add(n + j), c1);
            _mm512_storeu_ps(op_.add(2 * n + j), c2);
            _mm512_storeu_ps(op_.add(3 * n + j), c3);
            j += 16;
        }
        for (r, ar) in [a0, a1, a2, a3].into_iter().enumerate() {
            for jj in j..n {
                let mut s = out[r * n + jj];
                for l in 0..k {
                    s += *ar.add(l * a_stride) * b[l * n + jj];
                }
                out[r * n + jj] = s;
            }
        }
    }

    // Silence "unused" for the tree mirrors referenced only in docs here.
    const _: fn([f32; 8]) -> f32 = hsum8_tree;
    const _: fn([f32; 8]) -> f32 = hmax8_tree;
}

#[cfg(target_arch = "x86_64")]
use x86::{
    add_assign_avx2, axpy_avx2, div_inplace_avx2, dot_avx2, ew_avx2, row_max_avx2, row_sum_avx2,
    row_times_mat_avx2, row_times_mat_avx512, rows4_times_mat_avx2, rows4_times_mat_avx512,
    scale_avx2,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    /// Every lane-structured reduction must agree bitwise between the
    /// scalar mirror and the vector path, at sizes crossing every tail.
    #[test]
    fn lane_structured_reductions_bitwise_match_scalar() {
        for n in [0usize, 1, 5, 7, 8, 9, 31, 32, 33, 63, 64, 65, 257] {
            let a = seq(n, |i| ((i * 37 + 11) % 101) as f32 * 0.173 - 6.0);
            let b = seq(n, |i| ((i * 53 + 29) % 97) as f32 * 0.211 - 9.0);
            let want_dot = dot(Backend::Scalar, &a, &b);
            let want_max = row_max(Backend::Scalar, &a);
            let want_sum = row_sum(Backend::Scalar, &a);
            let hw = hardware_backend();
            assert_eq!(dot(hw, &a, &b).to_bits(), want_dot.to_bits(), "dot n={n}");
            assert_eq!(row_max(hw, &a).to_bits(), want_max.to_bits(), "max n={n}");
            assert_eq!(row_sum(hw, &a).to_bits(), want_sum.to_bits(), "sum n={n}");
        }
    }

    /// The row microkernel must agree bitwise with the scalar KC-blocked
    /// sweep across tile widths (64/48/16/8 tails) and both strides.
    #[test]
    fn row_times_mat_bitwise_matches_scalar() {
        for (k, n) in [
            (1usize, 1usize),
            (3, 7),
            (5, 8),
            (7, 47),
            (130, 49),
            (9, 65),
            (17, 131),
        ] {
            let a = seq(k * 2, |i| (i as f32 * 0.37).sin());
            let b = seq(k * n, |i| (i as f32 * 0.11).cos());
            for stride in [1usize, 2] {
                let mut want = seq(n, |i| i as f32 * 0.01 - 0.3);
                let mut got = want.clone();
                row_times_mat(Backend::Scalar, &a, 0, stride, k, &b, n, &mut want);
                row_times_mat(hardware_backend(), &a, 0, stride, k, &b, n, &mut got);
                for (j, (w, g)) in want.iter().zip(&got).enumerate() {
                    assert_eq!(
                        w.to_bits(),
                        g.to_bits(),
                        "k={k} n={n} stride={stride} j={j}"
                    );
                }
            }
        }
    }

    /// The 4-row register tiles (and their row/column tails) must be
    /// bitwise equal to per-row scalar calls for both access patterns:
    /// `matmul` (`a_row_step = k, a_stride = 1`) and `matmul_tn`
    /// (`a_row_step = 1, a_stride = m`). Row counts straddle the 4-row
    /// grouping; widths cross the 32/16/8-lane tails.
    #[test]
    fn rows_times_mat_bitwise_matches_scalar() {
        for nrows in [1usize, 3, 4, 5, 8, 11] {
            for (k, n) in [(1usize, 1usize), (5, 8), (7, 47), (33, 70), (17, 131)] {
                let m = nrows + 2; // tn-style leading dimension
                let a = seq(k * m, |i| (i as f32 * 0.37).sin());
                let b = seq(k * n, |i| (i as f32 * 0.11).cos());
                for (a_row_step, a_stride) in [(k, 1usize), (1usize, m)] {
                    let mut want = seq(nrows * n, |i| i as f32 * 0.01 - 0.3);
                    let mut got = want.clone();
                    for r in 0..nrows {
                        row_times_mat(
                            Backend::Scalar,
                            &a,
                            r * a_row_step,
                            a_stride,
                            k,
                            &b,
                            n,
                            &mut want[r * n..(r + 1) * n],
                        );
                    }
                    rows_times_mat(
                        hardware_backend(),
                        &a,
                        0,
                        a_row_step,
                        a_stride,
                        nrows,
                        k,
                        &b,
                        n,
                        &mut got,
                    );
                    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                        assert_eq!(
                            w.to_bits(),
                            g.to_bits(),
                            "nrows={nrows} k={k} n={n} stride={a_stride} i={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn with_backend_overrides_and_restores() {
        let before = backend();
        let inside = with_backend(Backend::Scalar, backend);
        assert_eq!(inside, Backend::Scalar);
        assert_eq!(backend(), before);
    }

    #[test]
    fn counters_are_monotone() {
        let (v0, s0) = (vector_kernels(), scalar_kernels());
        note(Backend::Scalar);
        note(Backend::Avx2);
        assert!(scalar_kernels() > s0);
        assert!(vector_kernels() > v0);
    }
}
