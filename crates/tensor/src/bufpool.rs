//! Size-class-keyed buffer recycling for zero-allocation hot paths.
//!
//! A [`BufferPool`] holds free `Vec<f32>` buffers in power-of-two size
//! classes plus a stash of shape vectors. [`BufferPool::alloc`] hands out a
//! **zero-filled** tensor (recycled buffer when one fits, fresh otherwise)
//! and [`BufferPool::recycle`] takes tensors back. Because every pooled
//! tensor starts out zeroed — exactly like `Tensor::zeros` — kernels that
//! accumulate into their destination (matmul) and kernels that overwrite it
//! produce results bit-identical to the allocating path, no matter what the
//! recycled buffer previously held.
//!
//! Pools are deliberately **not** global: each owner (a `Tape`, a serve
//! worker, a pool worker thread via [`with_local`]) has its own arena, so
//! there is no cross-thread sharing, no locking, and no allocator-like
//! contention. Buffers never migrate between threads; determinism is
//! unaffected by which pool served a buffer since contents are always
//! re-zeroed.
//!
//! Class invariant: a buffer lives in class `c = floor(log2(capacity))`,
//! so every buffer in class `c` has capacity ≥ 2^c. A request for `n`
//! elements is served from class `ceil(log2(n))`, whose buffers all have
//! capacity ≥ n — `resize` never reallocates on a pool hit. Fresh misses
//! allocate the full class size (2^ceil(log2(n))) so the buffer re-enters
//! the same class it serves.

use crate::Tensor;
use std::cell::RefCell;

/// Power-of-two size classes: class `c` covers capacities in [2^c, 2^{c+1}).
const CLASSES: usize = 40;

/// Free buffers retained per class; excess buffers are dropped on recycle so
/// a transient spike cannot pin memory forever.
const MAX_PER_CLASS: usize = 128;

/// Shape vectors retained for reuse (tiny, but they are heap allocations).
const MAX_SHAPES: usize = 512;

/// Allocator-pressure counters for one [`BufferPool`].
///
/// `misses` is the number of *fresh heap allocations* the pool performed —
/// the quantity the serve engine reports as `allocs_per_request` and the
/// steady-state tests pin to zero after warm-up.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a recycled buffer (no heap allocation).
    pub hits: u64,
    /// Requests that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the free lists.
    pub recycled: u64,
    /// Total capacity (in bytes) of buffers returned to the free lists.
    pub bytes_recycled: u64,
}

impl PoolStats {
    /// Counter deltas since an earlier snapshot of the same pool.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            recycled: self.recycled - earlier.recycled,
            bytes_recycled: self.bytes_recycled - earlier.bytes_recycled,
        }
    }

    /// Accumulates another pool's counters into this one (used to merge
    /// per-thread stash deltas into a worker's handle-passed pool stats).
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.recycled += other.recycled;
        self.bytes_recycled += other.bytes_recycled;
    }
}

/// A recycling arena of `Vec<f32>` buffers keyed by power-of-two size class.
///
/// See the module docs for the class invariant and determinism contract.
#[derive(Default)]
pub struct BufferPool {
    classes: Vec<Vec<Vec<f32>>>,
    shapes: Vec<Vec<usize>>,
    stats: PoolStats,
}

/// Smallest class whose buffers can hold `n` elements.
#[inline]
fn class_for_request(n: usize) -> usize {
    (n.max(1).next_power_of_two().trailing_zeros() as usize).min(CLASSES - 1)
}

/// The class a buffer of `cap` elements belongs to (`cap ≥ 1`).
#[inline]
fn class_for_capacity(cap: usize) -> usize {
    ((usize::BITS - 1 - cap.leading_zeros()) as usize).min(CLASSES - 1)
}

impl BufferPool {
    /// An empty pool; every early request is a miss until buffers recycle.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Returns a **zero-filled** tensor of `shape`, reusing a recycled
    /// buffer when one of sufficient capacity is available.
    pub fn alloc(&mut self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        let c = class_for_request(n);
        let mut data = match self.classes.get_mut(c).and_then(Vec::pop) {
            Some(buf) => {
                self.stats.hits += 1;
                buf
            }
            None => {
                self.stats.misses += 1;
                Vec::with_capacity(1usize << c)
            }
        };
        data.clear();
        data.resize(n, 0.0);
        let mut s = self.shapes.pop().unwrap_or_default();
        s.clear();
        // Min capacity 4: a recycled rank-1 shape vec re-used for a rank-2
        // request must not reallocate once warm (zero-malloc steady state).
        s.reserve(4.max(shape.len()));
        s.extend_from_slice(shape);
        Tensor::from_parts(s, data)
    }

    /// Takes a tensor back into the free lists for later reuse.
    pub fn recycle(&mut self, t: Tensor) {
        let (shape, data) = t.into_parts();
        if self.shapes.len() < MAX_SHAPES && shape.capacity() > 0 {
            self.shapes.push(shape);
        }
        self.recycle_vec(data);
    }

    /// Takes a raw buffer back into the free lists for later reuse.
    pub fn recycle_vec(&mut self, data: Vec<f32>) {
        let cap = data.capacity();
        if cap == 0 {
            return;
        }
        let c = class_for_capacity(cap);
        if self.classes.len() <= c {
            self.classes.resize_with(c + 1, Vec::new);
        }
        if self.classes[c].len() < MAX_PER_CLASS {
            self.stats.recycled += 1;
            self.stats.bytes_recycled += (cap * std::mem::size_of::<f32>()) as u64;
            self.classes[c].push(data);
        }
    }

    /// Snapshot of the allocator-pressure counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Folds another pool's counter delta into this pool's stats — used to
    /// attribute the thread-local stash activity of fanned-out workers back
    /// to the handle-passed pool their batch was accounted against.
    pub fn absorb_stats(&mut self, delta: &PoolStats) {
        self.stats.merge(delta);
    }

    /// Number of free buffers currently held across all classes. The
    /// steady-state tests assert this stops changing after warm-up.
    pub fn free_buffers(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Total capacity (bytes) currently parked in the free lists.
    pub fn free_bytes(&self) -> usize {
        self.classes
            .iter()
            .flatten()
            .map(|b| b.capacity() * std::mem::size_of::<f32>())
            .sum()
    }
}

thread_local! {
    static LOCAL: RefCell<BufferPool> = RefCell::new(BufferPool::new());
}

/// Runs `f` with this thread's stash pool.
///
/// Tasks fanned out over the persistent worker threads of [`crate::pool`]
/// use this so each worker keeps its arena warm across batches without any
/// cross-thread buffer sharing. Taking the whole pool out (`std::mem::take`)
/// and putting it back is also fine — the stash is plain thread-local state.
///
/// # Panics
/// If `f` re-enters `with_local` on the same thread (the stash is borrowed
/// mutably for the duration of `f`).
pub fn with_local<R>(f: impl FnOnce(&mut BufferPool) -> R) -> R {
    LOCAL.with(|p| f(&mut p.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_always_zeroed() {
        let mut pool = BufferPool::new();
        let mut t = pool.alloc(&[2, 3]);
        t.data_mut().iter_mut().for_each(|v| *v = 7.5);
        pool.recycle(t);
        let u = pool.alloc(&[5]);
        assert_eq!(u.shape(), &[5]);
        assert!(u.data().iter().all(|&v| v == 0.0), "recycled buffer leaked");
    }

    #[test]
    fn hit_reuses_capacity_without_reallocating() {
        let mut pool = BufferPool::new();
        let t = pool.alloc(&[100]);
        let cap_before = t.data().len();
        assert!(cap_before <= 128);
        pool.recycle(t);
        // 100 and 65 share class 7 (ceil log2 = 128): the same buffer serves.
        let u = pool.alloc(&[65]);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(u.len(), 65);
        pool.recycle(u);
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn distinct_classes_do_not_alias() {
        let mut pool = BufferPool::new();
        let small = pool.alloc(&[4]);
        pool.recycle(small);
        // A 1000-element request must not be served by the 4-element buffer.
        let big = pool.alloc(&[1000]);
        assert_eq!(pool.stats().misses, 2);
        let (_, buf) = big.into_parts();
        assert!(buf.capacity() >= 1024);
    }

    #[test]
    fn steady_state_reaches_zero_misses() {
        let mut pool = BufferPool::new();
        for _ in 0..3 {
            let ts: Vec<Tensor> = [[8usize, 8], [3, 40], [1, 17]]
                .iter()
                .map(|s| pool.alloc(s))
                .collect();
            ts.into_iter().for_each(|t| pool.recycle(t));
        }
        let s = pool.stats();
        assert_eq!(s.misses, 3, "only the first round may allocate");
        assert_eq!(s.hits, 6);
        assert_eq!(pool.free_buffers(), 3);
    }

    #[test]
    fn stats_delta_and_merge() {
        let mut pool = BufferPool::new();
        let before = pool.stats();
        let t = pool.alloc(&[10]);
        pool.recycle(t);
        let d = pool.stats().since(&before);
        assert_eq!((d.hits, d.misses, d.recycled), (0, 1, 1));
        assert!(d.bytes_recycled >= 40);
        let mut total = PoolStats::default();
        total.merge(&d);
        total.merge(&d);
        assert_eq!(total.misses, 2);
    }

    #[test]
    fn with_local_persists_across_calls() {
        let misses_before = with_local(|p| {
            let t = p.alloc(&[33]);
            let m = p.stats().misses;
            p.recycle(t);
            m
        });
        let (hits_delta, misses_after) = with_local(|p| {
            let h0 = p.stats().hits;
            let t = p.alloc(&[33]);
            let h1 = p.stats().hits;
            p.recycle(t);
            (h1 - h0, p.stats().misses)
        });
        assert_eq!(hits_delta, 1, "stash did not survive between calls");
        assert_eq!(misses_after, misses_before);
    }
}
