//! # imre-tensor
//!
//! Minimal dense-tensor substrate for the `imre` relation-extraction stack.
//!
//! The paper this workspace reproduces (Kuang et al., *Improving Neural Relation
//! Extraction with Implicit Mutual Relations*, ICDE 2020) was built on a Python
//! deep-learning framework. No mature equivalent exists in Rust, so this crate
//! provides the numeric core everything else is built on: a row-major `f32`
//! [`Tensor`] with the exact operations the models need — elementwise algebra,
//! (blocked) matrix multiplication, broadcast bias addition, row gather /
//! scatter-add (embedding lookups), axis reductions with argmax (max pooling),
//! and numerically stable softmax / log-softmax.
//!
//! Design choices:
//!
//! * **Row-major, contiguous `Vec<f32>`.** All models in the paper are small
//!   (hundreds of hidden units); cache-friendly contiguous storage with an
//!   `ikj`-ordered matmul is fast enough without a BLAS dependency.
//! * **Panics on shape mismatch.** Like `ndarray`, shape errors are programmer
//!   errors; every panic message names the operation and both shapes.
//! * **Mostly rank-1/rank-2.** Sequence and bag structure is handled one level
//!   up (in `imre-nn` / `imre-core`) by explicit loops over rows, which keeps
//!   this crate small and easily verified.
//! * **Deterministic parallelism.** Hot kernels run on the persistent
//!   [`pool`] worker pool (sized from `IMRE_THREADS` or the machine), with
//!   shape-derived row partitions guaranteeing results bit-identical to a
//!   single-threaded run at any thread count.
//! * **Runtime-dispatched SIMD.** The hot `*_into` kernels pick an AVX2 or
//!   AVX-512 register-blocked implementation at runtime via [`simd`], with a
//!   scalar fallback (`IMRE_FORCE_SCALAR=1` forces it) that is bit-identical
//!   to every vector path by construction.
//!
//! ```
//! use imre_tensor::Tensor;
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod bufpool;
mod init;
mod matmul;
mod ops;
pub mod pool;
pub mod quant;
mod reduce;
mod rows;
pub mod simd;
mod tensor;

pub use bufpool::{BufferPool, PoolStats};
pub use init::TensorRng;
pub use matmul::{matmul_into, matmul_nt_into, matmul_tn_into};
pub use ops::sigmoid_scalar;
pub use quant::QuantTensor;
pub use tensor::Tensor;

/// Absolute tolerance used by the test helpers in this workspace.
pub const TEST_EPS: f32 = 1e-4;

/// Asserts two f32 slices are elementwise close; used across the workspace's tests.
///
/// Panics with the first offending index on failure.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(
        a.len(),
        b.len(),
        "assert_close: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "assert_close: index {i}: {x} vs {y} (tol {tol})"
        );
    }
}
