//! Row-structured operations: slicing, gathering (embedding lookup),
//! scatter-add (embedding gradient), stacking and concatenation.
//!
//! `gather_rows` (the embedding-bag hot path) is row-parallel on the
//! [`crate::pool`] backend; `scatter_add_rows` deliberately stays
//! sequential because repeated indices make its writes overlap, and the
//! determinism contract forbids atomics or reduction-order changes there.

use crate::pool;
use crate::Tensor;

/// Target elements per parallel task for row-copy kernels. Copies are pure
/// memory bandwidth, so chunks must be large (~0.25 ns/element against the
/// ~650 ns dispatch cost); typical gathers stay on the inline path.
const ROW_GRAIN_ELEMS: usize = 64 * 1024;

impl Tensor {
    /// Borrow row `r` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    /// If out of bounds or not rank-2.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(
            r < rows,
            "Tensor::row: row {r} out of bounds for {:?}",
            self.shape()
        );
        &self.data()[r * cols..(r + 1) * cols]
    }

    /// Mutably borrow row `r` of a rank-2 tensor.
    ///
    /// # Panics
    /// If out of bounds or not rank-2.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(
            r < rows,
            "Tensor::row_mut: row {r} out of bounds for {rows} rows"
        );
        let c = cols;
        &mut self.data_mut()[r * c..(r + 1) * c]
    }

    /// Copies row `r` into a new rank-1 tensor.
    pub fn row_tensor(&self, r: usize) -> Tensor {
        Tensor::from_vec(self.row(r).to_vec(), &[self.cols()])
    }

    /// Gathers rows by index into a new `[indices.len(), cols]` tensor.
    ///
    /// This is the embedding-lookup primitive: `table.gather_rows(&token_ids)`.
    ///
    /// # Panics
    /// If any index is out of bounds or `self` is not rank-2.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let (rows, cols) = (self.rows(), self.cols());
        // Validate before the parallel copy so the panic fires on the caller
        // thread with this message, not wrapped by the pool.
        for &i in indices {
            assert!(
                i < rows,
                "Tensor::gather_rows: index {i} out of bounds for {rows} rows"
            );
        }
        let src = self.data();
        let mut out = Tensor::zeros(&[indices.len(), cols]);
        if cols == 0 {
            return out;
        }
        let grain = (ROW_GRAIN_ELEMS / cols.max(1)).max(1);
        pool::for_rows(
            out.data_mut(),
            indices.len(),
            cols,
            grain,
            |lo, hi, shard| {
                for (dst, &i) in shard.chunks_mut(cols).zip(&indices[lo..hi]) {
                    dst.copy_from_slice(&src[i * cols..(i + 1) * cols]);
                }
            },
        );
        out
    }

    /// Row gather written into a pre-shaped `[indices.len(), cols]`
    /// destination. Same validation, partition, and copy order as
    /// [`Tensor::gather_rows`] — bit-identical results.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Tensor) {
        let (rows, cols) = (self.rows(), self.cols());
        for &i in indices {
            assert!(
                i < rows,
                "Tensor::gather_rows_into: index {i} out of bounds for {rows} rows"
            );
        }
        assert_eq!(
            out.shape(),
            [indices.len(), cols],
            "Tensor::gather_rows_into: destination shape {:?} for {} indices × {} cols",
            out.shape(),
            indices.len(),
            cols
        );
        if cols == 0 {
            return;
        }
        let src = self.data();
        let grain = (ROW_GRAIN_ELEMS / cols.max(1)).max(1);
        pool::for_rows(
            out.data_mut(),
            indices.len(),
            cols,
            grain,
            |lo, hi, shard| {
                for (dst, &i) in shard.chunks_mut(cols).zip(&indices[lo..hi]) {
                    dst.copy_from_slice(&src[i * cols..(i + 1) * cols]);
                }
            },
        );
    }

    /// Scatter-add: for each `k`, adds row `k` of `updates` into row
    /// `indices[k]` of `self`. Repeated indices accumulate.
    ///
    /// This is the gradient of [`Tensor::gather_rows`] and is how embedding
    /// tables receive sparse updates.
    ///
    /// # Panics
    /// If shapes disagree or any index is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[usize], updates: &Tensor) {
        let (rows, cols) = (self.rows(), self.cols());
        assert_eq!(
            updates.rows(),
            indices.len(),
            "Tensor::scatter_add_rows: {} updates for {} indices",
            updates.rows(),
            indices.len()
        );
        assert_eq!(
            updates.cols(),
            cols,
            "Tensor::scatter_add_rows: update width {} vs table width {}",
            updates.cols(),
            cols
        );
        for (k, &i) in indices.iter().enumerate() {
            assert!(
                i < rows,
                "Tensor::scatter_add_rows: index {i} out of bounds for {rows} rows"
            );
            let dst = &mut self.data_mut()[i * cols..(i + 1) * cols];
            let src = &updates.data()[k * cols..(k + 1) * cols];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor.
    ///
    /// # Panics
    /// If `rows` is empty or lengths differ.
    pub fn stack_rows(rows: &[&Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "Tensor::stack_rows: nothing to stack");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Tensor::stack_rows: row {i} has len {} expected {cols}",
                r.len()
            );
            data.extend_from_slice(r.data());
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Concatenates rank-1 tensors end to end.
    pub fn concat(parts: &[&Tensor]) -> Tensor {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut data = Vec::with_capacity(total);
        for p in parts {
            data.extend_from_slice(p.data());
        }
        Tensor::from_vec(data, &[total])
    }

    /// Concatenates rank-2 tensors along the column axis (same row count).
    ///
    /// # Panics
    /// If row counts differ or `parts` is empty.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(
            !parts.is_empty(),
            "Tensor::concat_cols: nothing to concatenate"
        );
        let rows = parts[0].rows();
        let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(
                p.rows(),
                rows,
                "Tensor::concat_cols: part {i} has {} rows expected {rows}",
                p.rows()
            );
        }
        let mut out = Tensor::zeros(&[rows, total_cols]);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                let pc = p.cols();
                out.data_mut()[r * total_cols + off..r * total_cols + off + pc]
                    .copy_from_slice(p.row(r));
                off += pc;
            }
        }
        out
    }

    /// Vertically concatenates rank-2 tensors (same column count).
    ///
    /// # Panics
    /// If column counts differ or `parts` is empty.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(
            !parts.is_empty(),
            "Tensor::concat_rows: nothing to concatenate"
        );
        let cols = parts[0].cols();
        let total_rows: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(total_rows * cols);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(
                p.cols(),
                cols,
                "Tensor::concat_rows: part {i} has {} cols expected {cols}",
                p.cols()
            );
            data.extend_from_slice(p.data());
        }
        Tensor::from_vec(data, &[total_rows, cols])
    }

    /// Returns the sub-matrix of rows `[lo, hi)`.
    ///
    /// # Panics
    /// If the range is invalid.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Tensor {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(
            lo <= hi && hi <= rows,
            "Tensor::slice_rows: bad range [{lo}, {hi}) of {rows}"
        );
        Tensor::from_vec(self.data()[lo * cols..hi * cols].to_vec(), &[hi - lo, cols])
    }

    /// Returns the columns `[lo, hi)` of every row as a new tensor.
    ///
    /// # Panics
    /// If the range is invalid.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Tensor {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(
            lo <= hi && hi <= cols,
            "Tensor::slice_cols: bad range [{lo}, {hi}) of {cols}"
        );
        let w = hi - lo;
        let mut data = Vec::with_capacity(rows * w);
        for r in 0..rows {
            data.extend_from_slice(&self.data()[r * cols + lo..r * cols + hi]);
        }
        Tensor::from_vec(data, &[rows, w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])
    }

    #[test]
    fn row_access() {
        let t = m23();
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.row_tensor(0).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_mut_edits() {
        let mut t = m23();
        t.row_mut(0)[1] = 9.0;
        assert_eq!(t.at(0, 1), 9.0);
    }

    #[test]
    fn gather_rows_lookup() {
        let t = m23();
        let g = t.gather_rows(&[1, 0, 1]);
        assert_eq!(g.shape(), &[3, 3]);
        assert_eq!(g.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(g.row(2), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "gather_rows")]
    fn gather_rows_oob_panics() {
        let _ = m23().gather_rows(&[2]);
    }

    #[test]
    fn scatter_add_accumulates_repeats() {
        let mut table = Tensor::zeros(&[3, 2]);
        let upd = Tensor::from_vec(vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0], &[3, 2]);
        table.scatter_add_rows(&[0, 2, 0], &upd);
        assert_eq!(table.row(0), &[4.0, 4.0]); // rows 0 and 2 of upd both land on row 0
        assert_eq!(table.row(1), &[0.0, 0.0]);
        assert_eq!(table.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn scatter_is_gather_adjoint() {
        // <gather(T, idx), U> == <T, scatter(idx, U)> — the adjoint identity
        // the autograd relies on.
        let t = m23();
        let idx = [0usize, 1, 1];
        let u = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0, 1.0, 1.0, 3.0, 2.0, 1.0], &[3, 3]);
        let lhs = t.gather_rows(&idx).dot(&u);
        let mut scat = Tensor::zeros(&[2, 3]);
        scat.scatter_add_rows(&idx, &u);
        let rhs = t.dot(&scat);
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let s = Tensor::stack_rows(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2]);
        let c = Tensor::concat(&[&a, &b]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_cols_interleaves() {
        let a = m23();
        let b = Tensor::from_vec(vec![7.0, 8.0], &[2, 1]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 4]);
        assert_eq!(c.row(0), &[1.0, 2.0, 3.0, 7.0]);
        assert_eq!(c.row(1), &[4.0, 5.0, 6.0, 8.0]);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = m23();
        let b = m23();
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), &[4, 3]);
        assert_eq!(c.row(3), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn slicing() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[4, 3]);
        let r = t.slice_rows(1, 3);
        assert_eq!(r.shape(), &[2, 3]);
        assert_eq!(r.row(0), &[3.0, 4.0, 5.0]);
        let c = t.slice_cols(1, 3);
        assert_eq!(c.shape(), &[4, 2]);
        assert_eq!(c.row(0), &[1.0, 2.0]);
        assert_eq!(c.row(3), &[10.0, 11.0]);
    }
}
