//! Persistent worker thread pool with deterministic partition helpers.
//!
//! This is the parallel compute backend for every hot kernel in the
//! workspace (matmul, conv unfold, row-parallel elementwise/softmax ops, the
//! serving engine's batched forward). Design goals, in order:
//!
//! 1. **Bit-identical results at any thread count.** Work is split into
//!    chunks whose bounds depend only on the problem shape — never on the
//!    pool size — and every output element is produced by exactly one task
//!    running the same sequential inner loop the single-threaded kernel
//!    runs. Which worker executes which chunk therefore cannot affect a
//!    single bit of the result, and `IMRE_THREADS=1` vs `IMRE_THREADS=N`
//!    agree exactly (the serve engine's batched == unbatched determinism
//!    contract survives parallelism).
//! 2. **Spawn once, dispatch over channels.** Workers are spawned when the
//!    pool is built and park on an `mpsc` channel; each parallel region
//!    sends one `Arc<Job>` per worker and the caller participates in its own
//!    job, so a region costs one allocation plus `threads − 1` channel
//!    sends — no per-op thread spawning.
//! 3. **Zero overhead when parallelism is off.** A pool of size 1 (or a
//!    region with a single chunk) never touches a channel, a lock, or an
//!    atomic: [`ThreadPool::run`] degenerates to a plain loop on the caller
//!    thread. [`ThreadPool::dispatched_jobs`] counts real dispatches so
//!    tests and the `kernel_scaling` bench can assert this.
//!
//! The pool is **nested-use safe**: a task may itself call [`ThreadPool::run`]
//! on the same pool. Owners always drain their own job's task counter, so a
//! job completes even if every other worker is busy — there is no
//! cross-job blocking and hence no deadlock.
//!
//! Kernels resolve their pool through [`with_current`]: a thread-local
//! override installed by [`with_pool`] (used by tests and benches to compare
//! thread counts inside one process), falling back to the process-wide
//! [`global`] pool, which is sized from `IMRE_THREADS` or the machine's
//! available parallelism and can be pinned early via [`init_global`] (the
//! CLI's `--threads` flag).

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One parallel region: an erased task body plus claim/completion state.
struct Job {
    /// The task body. The `'static` lifetime is a lie told via `transmute`;
    /// the reference is only dereferenced while the owning
    /// [`ThreadPool::run`] call is blocked in [`Job::wait`], which keeps the
    /// real referent alive.
    f: &'static (dyn Fn(usize) + Sync),
    n_tasks: usize,
    /// Next unclaimed task index. Claiming is first-come, but the mapping
    /// from task index to output shard is fixed, so results are
    /// schedule-independent.
    next: AtomicUsize,
    /// Tasks not yet completed; guarded so the owner can sleep on `done`.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by any task, re-thrown by the owner.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Job {
    /// Claims and runs tasks until the counter is exhausted.
    fn execute(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.f)(i))) {
                let mut slot = self.panic.lock().expect("pool panic slot");
                slot.get_or_insert(payload);
            }
            let mut rem = self.remaining.lock().expect("pool latch");
            *rem -= 1;
            if *rem == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every task has completed (on any thread).
    fn wait(&self) {
        let mut rem = self.remaining.lock().expect("pool latch");
        while *rem > 0 {
            rem = self.done.wait(rem).expect("pool latch");
        }
    }
}

/// A fixed-size pool of persistent worker threads.
///
/// `threads` counts the caller too: a pool of size `t` spawns `t − 1`
/// workers and the thread calling [`ThreadPool::run`] works alongside them.
/// Size 1 spawns nothing and runs everything inline.
pub struct ThreadPool {
    senders: Vec<mpsc::Sender<Arc<Job>>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    dispatched: AtomicU64,
    /// Round-robin start index for wake-limited dispatch, so concurrent
    /// parallel regions spread across the pool instead of all queueing on
    /// the first few workers' channels.
    wake_cursor: AtomicUsize,
}

impl ThreadPool {
    /// Builds a pool of `threads` total threads (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads - 1);
        let mut workers = Vec::with_capacity(threads - 1);
        for i in 0..threads - 1 {
            let (tx, rx) = mpsc::channel::<Arc<Job>>();
            senders.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("imre-tensor-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job.execute();
                        }
                    })
                    .expect("spawn imre-tensor worker"),
            );
        }
        ThreadPool {
            senders,
            workers,
            threads,
            dispatched: AtomicU64::new(0),
            wake_cursor: AtomicUsize::new(0),
        }
    }

    /// Total threads this pool computes with (callers + workers).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many jobs have actually been dispatched over channels. Stays at
    /// zero for a size-1 pool and for regions below the parallel grain —
    /// the single-threaded fallback is channel-free by construction.
    pub fn dispatched_jobs(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Runs `f(0)`, `f(1)`, …, `f(n_tasks − 1)`, possibly in parallel.
    ///
    /// Tasks must be independent: each must write only state owned by its
    /// index. With one thread or one task this is a plain inline loop (no
    /// channels, no locks). A panic inside any task is re-thrown here with
    /// its original payload once every task has finished; the pool itself
    /// stays usable afterwards.
    pub fn run(&self, n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if self.threads <= 1 || n_tasks <= 1 {
            for i in 0..n_tasks {
                f(i);
            }
            return;
        }
        // SAFETY: the erased reference outlives the job because this call
        // does not return before `wait()` observes every task complete, and
        // workers never dereference `f` after the claim counter is
        // exhausted.
        let f_erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let job = Arc::new(Job {
            f: f_erased,
            n_tasks,
            next: AtomicUsize::new(0),
            remaining: Mutex::new(n_tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        self.dispatched.fetch_add(1, Ordering::Relaxed);
        // Wake only as many workers as there are tasks beyond the caller's
        // own: waking the full pool for a 2-task region just burns context
        // switches (worst on boxes with fewer cores than pool threads).
        // The starting worker rotates per dispatch so concurrent regions
        // (e.g. several serve engine workers dispatching small jobs at
        // once) spread across the pool instead of piling up behind the
        // first few workers' channels. Which workers wake can never affect
        // results — task claiming is first-come over a fixed index→shard
        // mapping, and the owner drains the counter itself regardless.
        let wakes = (n_tasks - 1).min(self.senders.len());
        let start = self.wake_cursor.fetch_add(wakes, Ordering::Relaxed);
        for j in 0..wakes {
            let tx = &self.senders[(start + j) % self.senders.len()];
            // Send failure means the worker died, which only happens if a
            // worker thread itself was killed; the owner still completes
            // the job by draining the counter below.
            let _ = tx.send(Arc::clone(&job));
        }
        job.execute();
        job.wait();
        let payload = job.panic.lock().expect("pool panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channels wakes the workers out of `recv`.
        self.senders.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ----------------------------------------------------------------------
// Pool resolution: global default + scoped override
// ----------------------------------------------------------------------

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

fn default_threads() -> usize {
    if let Ok(s) = std::env::var("IMRE_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide default pool, built on first use from `IMRE_THREADS`
/// (if set) or the machine's available parallelism.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// Pins the global pool to `threads` before first use (the CLI `--threads`
/// flag). Returns `Ok(threads)` when this call built the pool and
/// `Err(existing)` when the pool was already initialised with a different
/// sizing.
pub fn init_global(threads: usize) -> Result<usize, usize> {
    let mut installed = false;
    let pool = GLOBAL.get_or_init(|| {
        installed = true;
        ThreadPool::new(threads)
    });
    if installed {
        Ok(pool.threads())
    } else {
        Err(pool.threads())
    }
}

thread_local! {
    static OVERRIDE: Cell<Option<*const ThreadPool>> = const { Cell::new(None) };
}

/// Runs `f` with `pool` installed as this thread's compute pool; kernels
/// invoked inside resolve to it instead of the global pool. Used by tests
/// and benches to compare thread counts within one process.
pub fn with_pool<R>(pool: &ThreadPool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<*const ThreadPool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(Some(pool as *const ThreadPool)));
    let _restore = Restore(prev);
    f()
}

/// Resolves the current compute pool (scoped override, else global) and
/// hands it to `f`.
pub fn with_current<R>(f: impl FnOnce(&ThreadPool) -> R) -> R {
    match OVERRIDE.with(|c| c.get()) {
        // SAFETY: the pointer was installed by `with_pool`, whose borrow of
        // the pool is still live for the whole override scope.
        Some(p) => f(unsafe { &*p }),
        None => f(global()),
    }
}

/// Thread count of the current compute pool.
pub fn current_threads() -> usize {
    with_current(ThreadPool::threads)
}

// ----------------------------------------------------------------------
// Deterministic data-parallel helpers
// ----------------------------------------------------------------------

/// Raw pointer wrapper so disjoint-shard writers can be captured by `Sync`
/// task closures. Safety is the caller's obligation: tasks must write
/// disjoint regions.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

// Manual impls: `derive` would add an unwanted `T: Clone/Copy` bound, but a
// raw pointer is copyable for any `T`.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw pointer field (edition-2021 closures
    /// capture disjoint fields).
    #[inline]
    fn get(self) -> *mut T {
        self.0
    }
}

/// Elements of one 64-byte cache line (`f32`), the false-sharing unit.
const LINE_F32: usize = 16;

const fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Rounds a row grain up so every chunk spans a whole number of 64-byte
/// cache lines (where `cols` permits — for `cols` sharing no factor with
/// 16 the smallest such multiple is 16 rows). Adjacent chunks then never
/// write the same line, so workers do not ping-pong a shared line at shard
/// boundaries (false sharing). Inputs are shape-derived only, so the
/// partition stays thread-count independent.
fn align_grain(grain: usize, cols: usize) -> usize {
    if cols == 0 {
        return grain;
    }
    let step = LINE_F32 / gcd(cols, LINE_F32);
    grain.div_ceil(step) * step
}

/// Splits `out` (a `rows × cols` row-major buffer) into row ranges of
/// `grain` rows and runs `f(lo, hi, &mut out[lo*cols..hi*cols])` for each,
/// in parallel on the current pool.
///
/// The grain is first rounded up by [`align_grain`] so chunk boundaries
/// fall on cache-line offsets. The partition depends only on
/// `(rows, cols, grain)`, and each output row is written by exactly one
/// task, so results are bit-identical at any thread count. `f` must compute
/// rows independently of the chunk bounds it is handed. With one thread or
/// a single chunk, `f(0, rows, out)` is called directly on the caller
/// thread.
pub fn for_rows<F>(out: &mut [f32], rows: usize, cols: usize, grain: usize, f: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * cols, "pool::for_rows: shape mismatch");
    if rows == 0 {
        return;
    }
    let grain = align_grain(grain.max(1), cols);
    let chunks = rows.div_ceil(grain);
    with_current(|pool| {
        if pool.threads() <= 1 || chunks <= 1 {
            f(0, rows, out);
            return;
        }
        let base = SendPtr(out.as_mut_ptr());
        pool.run(chunks, &|c| {
            let lo = c * grain;
            let hi = ((c + 1) * grain).min(rows);
            // SAFETY: chunks cover disjoint row ranges of `out`.
            let shard = unsafe {
                std::slice::from_raw_parts_mut(base.get().add(lo * cols), (hi - lo) * cols)
            };
            f(lo, hi, shard);
        });
    });
}

/// Maps `f` over `0..n`, collecting results in index order, running tasks in
/// parallel on the current pool. Each slot is written by exactly one task,
/// so the output is identical at any thread count.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    with_current(|pool| {
        if pool.threads() <= 1 || n <= 1 {
            return (0..n).map(&f).collect();
        }
        let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(n);
        out.resize_with(n, std::mem::MaybeUninit::uninit);
        let base = SendPtr(out.as_mut_ptr());
        pool.run(n, &|i| {
            // SAFETY: each task writes exactly its own slot.
            unsafe { (*base.get().add(i)).write(f(i)) };
        });
        // `run` re-threw any task panic above, so every slot is initialised.
        let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
        std::mem::forget(out);
        // SAFETY: same allocation, every element initialised, layouts of
        // `MaybeUninit<T>` and `T` agree.
        unsafe { Vec::from_raw_parts(ptr as *mut T, len, cap) }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_zero_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let mut hits = 0;
        pool.run(3, &|_| {});
        pool.run(0, &|_| {});
        // inline path: closures may capture &mut state because nothing is
        // dispatched (prove it by counting via a cell-free side effect)
        let counter = AtomicUsize::new(0);
        pool.run(5, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        hits += counter.load(Ordering::Relaxed);
        assert_eq!(hits, 5);
        assert_eq!(pool.dispatched_jobs(), 0, "size-1 pool must never dispatch");
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.run(97, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(pool.dispatched_jobs(), 1);
    }

    #[test]
    fn single_task_is_inline_even_on_big_pool() {
        let pool = ThreadPool::new(4);
        pool.run(1, &|_| {});
        assert_eq!(pool.dispatched_jobs(), 0);
    }

    #[test]
    fn panic_propagates_with_payload_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                assert!(i != 5, "task 5 poisoned the job");
            });
        }))
        .expect_err("panic must propagate to the owner");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"?").to_string());
        assert!(msg.contains("task 5 poisoned"), "payload preserved: {msg}");
        // The pool is not poisoned: workers stay alive and later jobs run.
        let counter = AtomicUsize::new(0);
        pool.run(16, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn nested_runs_complete() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        pool.run(4, &|_| {
            pool.run(4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn with_pool_overrides_and_restores() {
        let pool = ThreadPool::new(3);
        let before = current_threads();
        let inside = with_pool(&pool, current_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn for_rows_partitions_cover_exactly() {
        let pool = ThreadPool::new(4);
        with_pool(&pool, || {
            for rows in [1usize, 2, 7, 33] {
                for grain in [1usize, 2, 5, 64] {
                    let cols = 3;
                    let mut out = vec![0.0f32; rows * cols];
                    for_rows(&mut out, rows, cols, grain, |lo, hi, shard| {
                        for r in lo..hi {
                            for c in 0..cols {
                                shard[(r - lo) * cols + c] += (r * cols + c) as f32 + 1.0;
                            }
                        }
                    });
                    for (i, &v) in out.iter().enumerate() {
                        assert_eq!(v, i as f32 + 1.0, "rows={rows} grain={grain} idx={i}");
                    }
                }
            }
        });
    }

    #[test]
    fn align_grain_covers_whole_cache_lines() {
        // Chunk size in elements must be a multiple of 16 f32 (one line).
        for cols in [1usize, 2, 3, 4, 7, 8, 16, 48, 50, 90, 256] {
            for grain in [1usize, 2, 5, 23, 64] {
                let g = align_grain(grain, cols);
                assert!(g >= grain, "never shrink: cols={cols} grain={grain}");
                assert_eq!(
                    (g * cols) % LINE_F32,
                    0,
                    "chunk not line-aligned: cols={cols} grain={grain} -> {g}"
                );
            }
        }
        // Already-aligned grains pass through unchanged.
        assert_eq!(align_grain(4, 16), 4);
        assert_eq!(align_grain(7, 0), 7);
    }

    #[test]
    fn par_map_preserves_index_order() {
        let pool = ThreadPool::new(4);
        let out = with_pool(&pool, || par_map(37, |i| i * i));
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        let empty: Vec<usize> = with_pool(&pool, || par_map(0, |i| i));
        assert!(empty.is_empty());
    }
}
