//! Post-training int8 quantization: per-row affine `QuantTensor` storage and
//! the i8×i8→i32 kernels of the quantized inference path.
//!
//! ## Scheme
//!
//! Every row of a matrix is quantized independently with an affine map
//! `q = round(x / scale) + zero_point` clamped to `[-127, 127]` (−128 is
//! never produced, so negation stays in range). The quantization range
//! always covers `0.0`, which makes real zeros — conv zero-padding, unused
//! position slots — round-trip *exactly* to `0.0`.
//!
//! A dot product between a quantized activation row `(qa, sa, za)` and a
//! quantized weight row `(qw, sw, zw)` expands to
//!
//! ```text
//! Σ (qa−za)·sa · (qw−zw)·sw
//!   = [Σ qa·qw − zw·Σqa − za·Σqw + n·za·zw] · sa·sw
//! ```
//!
//! where `Σ qa·qw` is the integer kernel and the per-row sums are
//! precomputed (`row_sums` for weights, returned by [`quantize_row_into`]
//! for activations). Integer accumulation is **exact**, so every backend —
//! scalar, AVX2, AVX-512 — produces the same `i32` regardless of summation
//! order, and the single f32 epilogue expression is shared; the quantized
//! kernels are therefore bit-identical across backends *by construction*
//! (a stronger property than the fixed-virtual-lane f32 kernels in `simd`,
//! which must emulate the vector reduction shape in scalar code).
//!
//! f32 appears only at dequantization boundaries: nonlinearities (tanh,
//! softmax), attention-weighted sums, and bias adds.
//!
//! ## Storage
//!
//! [`QuantTensor`] buffers are either owned (`Vec`) or *borrowed* from a
//! caller-provided allocation kept alive by an `Arc` — the zero-copy path
//! used by memory-mapped `.imrb` v3 bundles, where the i8 payload, scales,
//! zero points, and row sums are read straight out of the file mapping.
//!
//! Dispatch mirrors the `simd` module: `simd::backend()` picks the backend
//! (honoring `IMRE_SIMD`/`IMRE_FORCE_SCALAR` and `simd::with_backend`
//! overrides), and every kernel invocation is counted — see
//! [`quant_vector_kernels`]/[`quant_scalar_kernels`].

use crate::simd::{self, Backend};
use crate::Tensor;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest quantized value. −128 is excluded so `-q` never overflows.
pub const QMIN: i8 = -127;
/// Largest quantized value.
pub const QMAX: i8 = 127;

/// Largest supported row width. Bounds the exact-i32 accumulator:
/// `MAX_COLS · 127 · 127 < i32::MAX` with a wide margin.
pub const MAX_COLS: usize = 1 << 17;

// ----------------------------------------------------------------------
// Dispatch counters (quantized-kernel slice of the PR 7 counters)
// ----------------------------------------------------------------------

static QUANT_VECTOR: AtomicU64 = AtomicU64::new(0);
static QUANT_SCALAR: AtomicU64 = AtomicU64::new(0);

/// Counts one quantized-kernel dispatch, and mirrors it into the global
/// `simd` vector/scalar counters so existing dispatch assertions see the
/// quantized path too.
#[inline]
fn note_quant(be: Backend) {
    if be == Backend::Scalar {
        QUANT_SCALAR.fetch_add(1, Ordering::Relaxed);
    } else {
        QUANT_VECTOR.fetch_add(1, Ordering::Relaxed);
    }
    simd::note(be);
}

/// Quantized kernel invocations that took a vector backend.
pub fn quant_vector_kernels() -> u64 {
    QUANT_VECTOR.load(Ordering::Relaxed)
}

/// Quantized kernel invocations that fell back to scalar.
pub fn quant_scalar_kernels() -> u64 {
    QUANT_SCALAR.load(Ordering::Relaxed)
}

// ----------------------------------------------------------------------
// Storage
// ----------------------------------------------------------------------

/// Owned-or-borrowed buffer. The borrowed form carries an `Arc` keepalive
/// (typically the file mapping the pointer points into).
enum Buf<T: Copy> {
    Owned(Vec<T>),
    Borrowed {
        ptr: *const T,
        len: usize,
        _keep: Arc<dyn Any + Send + Sync>,
    },
}

// SAFETY: `Borrowed` is an immutable view of memory owned by the `Arc`
// keepalive; `T` is a plain `Copy` scalar, so sharing/sending the view is
// as safe as sharing the owning allocation.
unsafe impl<T: Copy + Send + Sync> Send for Buf<T> {}
unsafe impl<T: Copy + Send + Sync> Sync for Buf<T> {}

impl<T: Copy> Buf<T> {
    #[inline]
    fn as_slice(&self) -> &[T] {
        match self {
            Buf::Owned(v) => v,
            // SAFETY: construction contract (`from_borrowed_parts`)
            // guarantees `ptr` is valid for `len` elements for as long as
            // the keepalive is alive, which is at least `&self`'s lifetime.
            Buf::Borrowed { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

/// A 2-D int8 matrix quantized row-wise: `data` is `[rows, cols]`
/// row-major i8, and each row `r` carries `scales[r]`, `zeros[r]`, and the
/// precomputed integer row sum `row_sums[r] = Σ data[r][..] as i32`.
pub struct QuantTensor {
    rows: usize,
    cols: usize,
    data: Buf<i8>,
    scales: Buf<f32>,
    zeros: Buf<i8>,
    row_sums: Buf<i32>,
}

/// One quantized activation row, as produced by [`quantize_row_into`].
#[derive(Clone, Copy, Debug)]
pub struct QuantRowParams {
    /// Dequantization scale.
    pub scale: f32,
    /// Zero point in the quantized domain.
    pub zero_point: i8,
    /// `Σ q` over the row.
    pub sum: i32,
}

impl QuantTensor {
    /// Quantizes a 2-D `Tensor` row-wise.
    ///
    /// # Panics
    /// When `t` is not 2-D or wider than [`MAX_COLS`].
    pub fn quantize(t: &Tensor) -> QuantTensor {
        let (rows, cols) = dims2(t);
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![0f32; rows];
        let mut zeros = vec![0i8; rows];
        let mut row_sums = vec![0i32; rows];
        for r in 0..rows {
            let p = quantize_row_into(
                &t.data()[r * cols..(r + 1) * cols],
                &mut data[r * cols..(r + 1) * cols],
            );
            scales[r] = p.scale;
            zeros[r] = p.zero_point;
            row_sums[r] = p.sum;
        }
        QuantTensor {
            rows,
            cols,
            data: Buf::Owned(data),
            scales: Buf::Owned(scales),
            zeros: Buf::Owned(zeros),
            row_sums: Buf::Owned(row_sums),
        }
    }

    /// Quantizes the *transpose* of a 2-D `Tensor` row-wise — the layout
    /// [`qmatvec_into`] wants for a `[in, out]` linear weight: the result
    /// has one row per output unit.
    pub fn quantize_transposed(t: &Tensor) -> QuantTensor {
        let (trows, tcols) = dims2(t);
        let (rows, cols) = (tcols, trows);
        let mut scratch = vec![0f32; cols];
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![0f32; rows];
        let mut zeros = vec![0i8; rows];
        let mut row_sums = vec![0i32; rows];
        for r in 0..rows {
            for (c, s) in scratch.iter_mut().enumerate() {
                *s = t.data()[c * tcols + r];
            }
            let p = quantize_row_into(&scratch, &mut data[r * cols..(r + 1) * cols]);
            scales[r] = p.scale;
            zeros[r] = p.zero_point;
            row_sums[r] = p.sum;
        }
        QuantTensor {
            rows,
            cols,
            data: Buf::Owned(data),
            scales: Buf::Owned(scales),
            zeros: Buf::Owned(zeros),
            row_sums: Buf::Owned(row_sums),
        }
    }

    /// Rebuilds a tensor from owned parts (the owned `.imrb` v3 load path).
    pub fn from_owned_parts(
        rows: usize,
        cols: usize,
        data: Vec<i8>,
        scales: Vec<f32>,
        zeros: Vec<i8>,
        row_sums: Vec<i32>,
    ) -> Result<QuantTensor, String> {
        if cols == 0 || cols > MAX_COLS {
            return Err(format!("quant tensor cols {cols} out of range"));
        }
        if data.len() != rows * cols
            || scales.len() != rows
            || zeros.len() != rows
            || row_sums.len() != rows
        {
            return Err(format!(
                "quant tensor part lengths inconsistent with [{rows}, {cols}]"
            ));
        }
        Ok(QuantTensor {
            rows,
            cols,
            data: Buf::Owned(data),
            scales: Buf::Owned(scales),
            zeros: Buf::Owned(zeros),
            row_sums: Buf::Owned(row_sums),
        })
    }

    /// Builds a tensor whose buffers *borrow* from memory owned by `keep`
    /// (the zero-copy mmap load path). The tensor holds `keep` alive, so
    /// dropping the last clone of the mapping `Arc` is deferred until the
    /// tensor itself drops.
    ///
    /// # Safety
    /// Every pointer must be properly aligned for its element type and
    /// valid for the stated element count (`data`: `rows * cols`; the
    /// rest: `rows`) for as long as `keep` is alive, and the memory must
    /// not be mutated for that lifetime.
    pub unsafe fn from_borrowed_parts(
        rows: usize,
        cols: usize,
        data: *const i8,
        scales: *const f32,
        zeros: *const i8,
        row_sums: *const i32,
        keep: Arc<dyn Any + Send + Sync>,
    ) -> QuantTensor {
        assert!(
            cols > 0 && cols <= MAX_COLS,
            "quant tensor cols out of range"
        );
        QuantTensor {
            rows,
            cols,
            data: Buf::Borrowed {
                ptr: data,
                len: rows * cols,
                _keep: Arc::clone(&keep),
            },
            scales: Buf::Borrowed {
                ptr: scales,
                len: rows,
                _keep: Arc::clone(&keep),
            },
            zeros: Buf::Borrowed {
                ptr: zeros,
                len: rows,
                _keep: Arc::clone(&keep),
            },
            row_sums: Buf::Borrowed {
                ptr: row_sums,
                len: rows,
                _keep: keep,
            },
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The i8 payload, `[rows, cols]` row-major.
    pub fn data(&self) -> &[i8] {
        self.data.as_slice()
    }

    /// Per-row dequantization scales.
    pub fn scales(&self) -> &[f32] {
        self.scales.as_slice()
    }

    /// Per-row zero points.
    pub fn zeros(&self) -> &[i8] {
        self.zeros.as_slice()
    }

    /// Per-row precomputed integer sums.
    pub fn row_sums(&self) -> &[i32] {
        self.row_sums.as_slice()
    }

    /// Whether the buffers borrow from an external allocation (mmap).
    pub fn is_borrowed(&self) -> bool {
        matches!(self.data, Buf::Borrowed { .. })
    }

    /// Total payload bytes across all four buffers (the serialized and
    /// resident size of the quantized table, excluding headers).
    pub fn bytes(&self) -> usize {
        self.rows * self.cols + self.rows * (4 + 1 + 4)
    }

    /// Dequantizes row `r` into `out` (len `cols`).
    pub fn dequant_row_into(&self, r: usize, out: &mut [f32]) {
        assert!(r < self.rows && out.len() == self.cols);
        let be = simd::backend();
        note_quant(be);
        dequant(
            be,
            &self.data.as_slice()[r * self.cols..(r + 1) * self.cols],
            self.zeros.as_slice()[r],
            self.scales.as_slice()[r],
            out,
        );
    }
}

fn dims2(t: &Tensor) -> (usize, usize) {
    assert!(
        t.shape().len() == 2,
        "QuantTensor::quantize wants a 2-D tensor"
    );
    let (rows, cols) = (t.shape()[0], t.shape()[1]);
    assert!(
        cols > 0 && cols <= MAX_COLS,
        "quant tensor cols out of range"
    );
    (rows, cols)
}

// ----------------------------------------------------------------------
// Activation quantization (deterministic scalar; O(n) next to O(n·m) matvec)
// ----------------------------------------------------------------------

/// Quantizes one f32 row into `dst` and returns its affine parameters.
///
/// The range is widened to include `0.0` so exact zeros stay exact. The
/// AVX-512 form mirrors the scalar formula operation for operation
/// (elementwise IEEE ops have no summation-order freedom) and routes rows
/// containing non-finite values back to the scalar loop, so the output is
/// bit-identical on every backend. Not counted in the kernel dispatch
/// counters — those track the O(n·m) matvec/gather work, and the existing
/// count assertions would shift.
pub fn quantize_row_into(src: &[f32], dst: &mut [i8]) -> QuantRowParams {
    assert_eq!(src.len(), dst.len());
    assert!(src.len() <= MAX_COLS, "row wider than MAX_COLS");
    #[cfg(target_arch = "x86_64")]
    if simd::backend() == Backend::Avx512 && avx512bw_available() && avx512vl_available() {
        // SAFETY: runtime-detected avx512f (backend) + avx512bw + avx512vl.
        return unsafe { quantize_row_avx512(src, dst) };
    }
    quantize_row_scalar(src, dst)
}

fn quantize_row_scalar(src: &[f32], dst: &mut [i8]) -> QuantRowParams {
    let mut min = 0.0f32;
    let mut max = 0.0f32;
    for &x in src {
        if x.is_finite() {
            if x < min {
                min = x;
            }
            if x > max {
                max = x;
            }
        }
    }
    let scale = if max > min {
        (max - min) / (QMAX as f32 - QMIN as f32)
    } else {
        1.0
    };
    let zp = (QMIN as f32 - min / scale)
        .round()
        .clamp(QMIN as f32, QMAX as f32) as i32;
    let inv = 1.0 / scale;
    let mut sum = 0i32;
    for (d, &x) in dst.iter_mut().zip(src) {
        // Round-half-away-from-zero via truncation: one multiply, one add,
        // one `cvttss2si` — no libm `roundf` call in the hot loop. `as i32`
        // truncates (and saturates), matching on every platform.
        let y = x * inv;
        let q =
            ((y + if y >= 0.0 { 0.5 } else { -0.5 }) as i32 + zp).clamp(QMIN as i32, QMAX as i32);
        *d = q as i8;
        sum += q;
    }
    QuantRowParams {
        scale,
        zero_point: zp as i8,
        sum,
    }
}

/// Vector [`quantize_row_scalar`]: same min/max selection (exact — no
/// rounding in comparisons), same shared `scale`/`zp` scalars, and an
/// elementwise pipeline (`mul`, signed `±0.5`, truncating convert, `+zp`,
/// clamp) whose every step is the IEEE operation the scalar loop performs,
/// so the two agree bitwise. Rows with non-finite elements (or a subnormal
/// scale, whose reciprocal overflows) fall back to the scalar loop rather
/// than emulating Rust's saturating-cast edge cases lane by lane.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512vl")]
unsafe fn quantize_row_avx512(src: &[f32], dst: &mut [i8]) -> QuantRowParams {
    use std::arch::x86_64::*;
    let n = src.len();
    unsafe {
        // Pass 1: min/max over finite lanes, starting from 0.0 like scalar.
        let absmask = _mm512_castsi512_ps(_mm512_set1_epi32(0x7fff_ffff));
        let vinf = _mm512_set1_ps(f32::INFINITY);
        let mut vmin = _mm512_setzero_ps();
        let mut vmax = _mm512_setzero_ps();
        let mut nonfinite: __mmask16 = 0;
        let mut i = 0;
        while i + 16 <= n {
            let v = _mm512_loadu_ps(src.as_ptr().add(i));
            let fin = _mm512_cmp_ps_mask(_mm512_and_ps(v, absmask), vinf, _CMP_LT_OQ);
            nonfinite |= !fin;
            vmin = _mm512_mask_min_ps(vmin, fin, vmin, v);
            vmax = _mm512_mask_max_ps(vmax, fin, vmax, v);
            i += 16;
        }
        let ktail: __mmask16 = if i < n { (1u16 << (n - i)) - 1 } else { 0 };
        if i < n {
            let v = _mm512_maskz_loadu_ps(ktail, src.as_ptr().add(i));
            let fin = _mm512_cmp_ps_mask(_mm512_and_ps(v, absmask), vinf, _CMP_LT_OQ);
            nonfinite |= !fin & ktail;
            let fin = fin & ktail;
            vmin = _mm512_mask_min_ps(vmin, fin, vmin, v);
            vmax = _mm512_mask_max_ps(vmax, fin, vmax, v);
        }
        if nonfinite != 0 {
            return quantize_row_scalar(src, dst);
        }
        let min = _mm512_reduce_min_ps(vmin);
        let max = _mm512_reduce_max_ps(vmax);
        let scale = if max > min {
            (max - min) / (QMAX as f32 - QMIN as f32)
        } else {
            1.0
        };
        let zp = (QMIN as f32 - min / scale)
            .round()
            .clamp(QMIN as f32, QMAX as f32) as i32;
        let inv = 1.0 / scale;
        if !inv.is_finite() {
            return quantize_row_scalar(src, dst);
        }
        // With `inv` finite and every x inside [min, max] ∋ 0, |x·inv| stays
        // below ~255, so the truncating convert never saturates.
        let vinv = _mm512_set1_ps(inv);
        let vhalf = _mm512_set1_ps(0.5);
        let vsign = _mm512_castsi512_ps(_mm512_set1_epi32(u32::MAX as i32 ^ 0x7fff_ffff));
        let vzp = _mm512_set1_epi32(zp);
        let vqmin = _mm512_set1_epi32(QMIN as i32);
        let vqmax = _mm512_set1_epi32(QMAX as i32);
        let mut vsum = _mm512_setzero_si512();
        let quantize_block = |v: __m512, vsum: &mut __m512i| -> __m512i {
            let y = _mm512_mul_ps(v, vinv);
            // `y >= 0.0 ? 0.5 : -0.5`: y = -0.0 takes +0.5 in scalar and
            // -0.5 here, but both truncate to 0, so results agree.
            let half = _mm512_or_ps(_mm512_and_ps(y, vsign), vhalf);
            let vi = _mm512_cvttps_epi32(_mm512_add_ps(y, half));
            let vq = _mm512_max_epi32(_mm512_min_epi32(_mm512_add_epi32(vi, vzp), vqmax), vqmin);
            *vsum = _mm512_add_epi32(*vsum, vq);
            vq
        };
        let mut i = 0;
        while i + 16 <= n {
            let v = _mm512_loadu_ps(src.as_ptr().add(i));
            let vq = quantize_block(v, &mut vsum);
            _mm_storeu_si128(
                dst.as_mut_ptr().add(i) as *mut __m128i,
                _mm512_cvtepi32_epi8(vq),
            );
            i += 16;
        }
        if i < n {
            let v = _mm512_maskz_loadu_ps(ktail, src.as_ptr().add(i));
            // Masked-off lanes quantize the placeholder 0.0; exclude them
            // from the stored sum and the masked store.
            let mut vsum_tail = _mm512_setzero_si512();
            let vq = quantize_block(v, &mut vsum_tail);
            vsum = _mm512_add_epi32(vsum, _mm512_maskz_mov_epi32(ktail, vq));
            _mm_mask_storeu_epi8(dst.as_mut_ptr().add(i), ktail, _mm512_cvtepi32_epi8(vq));
        }
        QuantRowParams {
            scale,
            zero_point: zp as i8,
            sum: _mm512_reduce_add_epi32(vsum),
        }
    }
}

/// Whether the 128/256-bit forms of AVX-512 ops (`avx512vl`) are available.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx512vl_available() -> bool {
    use std::sync::OnceLock;
    static VL: OnceLock<bool> = OnceLock::new();
    *VL.get_or_init(|| std::arch::is_x86_feature_detected!("avx512vl"))
}

// ----------------------------------------------------------------------
// Kernels
// ----------------------------------------------------------------------

/// `out[r] = dequant(act · weight_row_r) + bias[r]` for every weight row.
///
/// `act` is a row previously quantized with [`quantize_row_into`] (its
/// params in `p`). The integer dot is exact on every backend and the f32
/// epilogue is one shared expression, so the result is bit-identical
/// scalar-vs-SIMD.
pub fn qmatvec_into(
    w: &QuantTensor,
    act: &[i8],
    p: QuantRowParams,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(act.len(), w.cols, "activation/weight width mismatch");
    assert_eq!(out.len(), w.rows, "output/weight rows mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), w.rows, "bias/weight rows mismatch");
    }
    let be = simd::backend();
    note_quant(be);
    #[cfg(target_arch = "x86_64")]
    if be == Backend::Avx512
        && w.cols <= VNNI_MAX_COLS
        && avx512bw_available()
        && avx512vnni_available()
    {
        // SAFETY: runtime-detected avx512f (backend) + avx512bw + avx512vnni.
        unsafe { qmatvec_avx512vnni(w, act, p, bias, out) };
        return;
    }
    let n = w.cols as i64;
    let za = p.zero_point as i64;
    let data = w.data.as_slice();
    let scales = w.scales.as_slice();
    let zeros = w.zeros.as_slice();
    let sums = w.row_sums.as_slice();
    for r in 0..w.rows {
        let acc = qdot(be, act, &data[r * w.cols..(r + 1) * w.cols]);
        let zw = zeros[r] as i64;
        let int = acc as i64 - zw * p.sum as i64 - za * sums[r] as i64 + n * za * zw;
        let real = int as f32 * (p.scale * scales[r]);
        out[r] = match bias {
            Some(b) => real + b[r],
            None => real,
        };
    }
}

/// Width cap of the VNNI matvec: the biased-u8 dot is bounded by
/// `255·128·cols`, which must stay inside the exact-i32 accumulator.
#[cfg(target_arch = "x86_64")]
const VNNI_MAX_COLS: usize = 1 << 16;

/// Whether AVX512-VNNI (`vpdpbusd`) is available.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx512vnni_available() -> bool {
    use std::sync::OnceLock;
    static VNNI: OnceLock<bool> = OnceLock::new();
    *VNNI.get_or_init(|| std::arch::is_x86_feature_detected!("avx512vnni"))
}

/// VNNI matvec: `vpdpbusd` needs an unsigned left operand, so activations
/// are biased to u8 on the fly (`a ⊕ 0x80 = a + 128`) and the exact
/// surplus `128·Σw_r` is subtracted per row — all in integers, so the
/// result is bit-identical to the scalar/qdot paths. Weight rows run four
/// at a time sharing each activation load; the sub-64 tail is a zero-masked
/// load on the *weight* side (zeroed weight lanes annihilate whatever the
/// biased activation holds there).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512vnni")]
unsafe fn qmatvec_avx512vnni(
    w: &QuantTensor,
    act: &[i8],
    p: QuantRowParams,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let cols = w.cols;
    let n = cols as i64;
    let za = p.zero_point as i64;
    let data = w.data.as_slice();
    let scales = w.scales.as_slice();
    let zeros = w.zeros.as_slice();
    let sums = w.row_sums.as_slice();
    let vbias = _mm512_set1_epi8(-128i8);
    let blocks = cols / 64;
    let tail = cols % 64;
    let kmask: __mmask64 = if tail == 0 { 0 } else { (1u64 << tail) - 1 };

    let epilogue = |r: usize, biased: i64| {
        let acc = biased - 128 * sums[r] as i64;
        let zw = zeros[r] as i64;
        let int = acc - zw * p.sum as i64 - za * sums[r] as i64 + n * za * zw;
        let real = int as f32 * (p.scale * scales[r]);
        match bias {
            Some(b) => real + b[r],
            None => real,
        }
    };

    let mut r = 0;
    unsafe {
        while r + 4 <= w.rows {
            let mut acc = [_mm512_setzero_si512(); 4];
            for bi in 0..blocks {
                let i = bi * 64;
                let va =
                    _mm512_xor_si512(_mm512_loadu_si512(act.as_ptr().add(i) as *const _), vbias);
                for (j, a) in acc.iter_mut().enumerate() {
                    let vw = _mm512_loadu_si512(data.as_ptr().add((r + j) * cols + i) as *const _);
                    *a = _mm512_dpbusd_epi32(*a, va, vw);
                }
            }
            if tail != 0 {
                let i = blocks * 64;
                let va =
                    _mm512_xor_si512(_mm512_maskz_loadu_epi8(kmask, act.as_ptr().add(i)), vbias);
                for (j, a) in acc.iter_mut().enumerate() {
                    let vw = _mm512_maskz_loadu_epi8(kmask, data.as_ptr().add((r + j) * cols + i));
                    *a = _mm512_dpbusd_epi32(*a, va, vw);
                }
            }
            for (j, a) in acc.iter().enumerate() {
                out[r + j] = epilogue(r + j, _mm512_reduce_add_epi32(*a) as i64);
            }
            r += 4;
        }
        while r < w.rows {
            let mut a = _mm512_setzero_si512();
            for bi in 0..blocks {
                let i = bi * 64;
                let va =
                    _mm512_xor_si512(_mm512_loadu_si512(act.as_ptr().add(i) as *const _), vbias);
                let vw = _mm512_loadu_si512(data.as_ptr().add(r * cols + i) as *const _);
                a = _mm512_dpbusd_epi32(a, va, vw);
            }
            if tail != 0 {
                let i = blocks * 64;
                let va =
                    _mm512_xor_si512(_mm512_maskz_loadu_epi8(kmask, act.as_ptr().add(i)), vbias);
                let vw = _mm512_maskz_loadu_epi8(kmask, data.as_ptr().add(r * cols + i));
                a = _mm512_dpbusd_epi32(a, va, vw);
            }
            out[r] = epilogue(r, _mm512_reduce_add_epi32(a) as i64);
            r += 1;
        }
    }
}

/// Gathers `ids` rows of a quantized table, dequantized, into `out`
/// (`ids.len() × cols` row-major) — the embedding-lookup kernel.
pub fn gather_dequant_into(table: &QuantTensor, ids: &[usize], out: &mut [f32]) {
    assert_eq!(
        out.len(),
        ids.len() * table.cols,
        "gather output size mismatch"
    );
    let be = simd::backend();
    note_quant(be);
    let data = table.data.as_slice();
    let scales = table.scales.as_slice();
    let zeros = table.zeros.as_slice();
    for (i, &id) in ids.iter().enumerate() {
        assert!(
            id < table.rows,
            "gather id {id} out of range {}",
            table.rows
        );
        dequant(
            be,
            &data[id * table.cols..(id + 1) * table.cols],
            zeros[id],
            scales[id],
            &mut out[i * table.cols..(i + 1) * table.cols],
        );
    }
}

/// Whether the byte-granular AVX-512 tier (`avx512bw`) is available.
/// `Backend::Avx512` alone only guarantees `avx512f`, which has no 8/16-bit
/// integer ops.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx512bw_available() -> bool {
    use std::sync::OnceLock;
    static BW: OnceLock<bool> = OnceLock::new();
    *BW.get_or_init(|| std::arch::is_x86_feature_detected!("avx512bw"))
}

/// Exact integer dot `Σ a[i]·b[i]` over i8 operands.
fn qdot(be: Backend, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if be == Backend::Avx512 && avx512bw_available() {
            // SAFETY: gated on runtime avx512f (backend) + avx512bw checks.
            return unsafe { qdot_avx512(a, b) };
        }
        if be != Backend::Scalar {
            // SAFETY: vector backends imply avx2 support (see `simd::backend`).
            return unsafe { qdot_avx2(a, b) };
        }
    }
    let _ = be;
    let mut sum = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        sum += x as i32 * y as i32;
    }
    sum
}

/// `out[i] = (q[i] − zp) · scale`. The scalar and vector forms both
/// compute `float(q) − float(zp)` on exactly representable small integers
/// followed by one multiply, so they agree bitwise.
fn dequant(be: Backend, q: &[i8], zp: i8, scale: f32, out: &mut [f32]) {
    debug_assert_eq!(q.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if be != Backend::Scalar {
        // SAFETY: vector backends imply avx2 support (see `simd::backend`).
        unsafe { dequant_avx2(q, zp as f32, scale, out) };
        return;
    }
    let _ = be;
    let zpf = zp as f32;
    for (o, &x) in out.iter_mut().zip(q) {
        *o = (x as f32 - zpf) * scale;
    }
}

// ----------------------------------------------------------------------
// AVX2 bodies
// ----------------------------------------------------------------------

/// i8 dot via sign-extension to i16 and 512-bit `madd_epi16`
/// pair-accumulation into sixteen i32 lanes; the sub-64 tail is one
/// zero-masked load (zeroed lanes contribute exact zeros), so no element
/// ever takes a scalar path. Integer adds are associative, so any lane
/// structure yields the scalar sum exactly; per-lane magnitude stays far
/// below `i32::MAX` for all widths ≤ [`MAX_COLS`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512bw")]
unsafe fn qdot_avx512(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm512_setzero_si512();
    let mut i = 0;
    unsafe {
        let mut fma = |va: __m512i, vb: __m512i| {
            let alo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(va));
            let ahi = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(va, 1));
            let blo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(vb));
            let bhi = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(vb, 1));
            acc = _mm512_add_epi32(acc, _mm512_madd_epi16(alo, blo));
            acc = _mm512_add_epi32(acc, _mm512_madd_epi16(ahi, bhi));
        };
        while i + 64 <= n {
            let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
            let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const _);
            fma(va, vb);
            i += 64;
        }
        if i < n {
            let k: __mmask64 = (1u64 << (n - i)) - 1; // n - i in 1..=63
            let va = _mm512_maskz_loadu_epi8(k, a.as_ptr().add(i));
            let vb = _mm512_maskz_loadu_epi8(k, b.as_ptr().add(i));
            fma(va, vb);
        }
    }
    _mm512_reduce_add_epi32(acc)
}

/// i8 dot via sign-extension to i16 and `madd_epi16` pair-accumulation
/// into eight i32 lanes. Integer adds are associative, so any lane
/// structure yields the scalar sum exactly; per-lane magnitude stays far
/// below `i32::MAX` for all widths ≤ [`MAX_COLS`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qdot_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 32 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
        let ahi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
        let blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
        let bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(alo, blo));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(ahi, bhi));
        i += 32;
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut sum: i32 = lanes.iter().sum();
    while i < n {
        sum += a[i] as i32 * b[i] as i32;
        i += 1;
    }
    sum
}

/// Vector dequant: sign-extend 8 bytes to i32, convert, subtract the zero
/// point, scale. Element-wise — no reduction — so bit-identity with the
/// scalar loop needs no lane emulation.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dequant_avx2(q: &[i8], zpf: f32, scale: f32, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = q.len();
    let vz = _mm256_set1_ps(zpf);
    let vs = _mm256_set1_ps(scale);
    let mut i = 0;
    while i + 8 <= n {
        let raw = _mm_loadl_epi64(q.as_ptr().add(i) as *const __m128i);
        let vi = _mm256_cvtepi8_epi32(raw);
        let vf = _mm256_cvtepi32_ps(vi);
        let r = _mm256_mul_ps(_mm256_sub_ps(vf, vz), vs);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
        i += 8;
    }
    while i < n {
        *out.get_unchecked_mut(i) = (*q.get_unchecked(i) as f32 - zpf) * scale;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    fn random_matrix(rng: &mut TensorRng, rows: usize, cols: usize, amp: f32) -> Tensor {
        let mut t = Tensor::zeros(&[rows, cols]);
        for v in t.data_mut() {
            *v = (rng.f32() * 2.0 - 1.0) * amp;
        }
        t
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let mut rng = TensorRng::seed(11);
        let t = random_matrix(&mut rng, 7, 33, 3.0);
        let q = QuantTensor::quantize(&t);
        let mut row = vec![0f32; 33];
        for r in 0..7 {
            q.dequant_row_into(r, &mut row);
            let scale = q.scales()[r];
            for (c, &d) in row.iter().enumerate() {
                let x = t.data()[r * 33 + c];
                assert!(
                    (x - d).abs() <= scale * 0.5 + 1e-6,
                    "row {r} col {c}: {x} vs {d} (scale {scale})"
                );
            }
        }
    }

    #[test]
    fn exact_zero_stays_exact() {
        let t = Tensor::from_vec(vec![0.0, 1.5, -2.0, 0.0, 0.25, 0.0], &[2, 3]);
        let q = QuantTensor::quantize(&t);
        let mut row = vec![0f32; 3];
        for r in 0..2 {
            q.dequant_row_into(r, &mut row);
            for (c, &d) in row.iter().enumerate() {
                if t.data()[r * 3 + c] == 0.0 {
                    assert_eq!(
                        d.to_bits(),
                        0.0f32.to_bits(),
                        "zero must round-trip exactly"
                    );
                }
            }
        }
    }

    #[test]
    fn constant_row_quantizes_without_nan() {
        let t = Tensor::from_vec(vec![2.5; 8], &[1, 8]);
        let q = QuantTensor::quantize(&t);
        let mut row = vec![0f32; 8];
        q.dequant_row_into(0, &mut row);
        for &d in &row {
            assert!(d.is_finite());
            assert!((d - 2.5).abs() <= q.scales()[0] * 0.5 + 1e-6);
        }
    }

    #[test]
    fn qmatvec_tracks_f32_reference() {
        let mut rng = TensorRng::seed(5);
        let w = random_matrix(&mut rng, 16, 96, 1.0);
        let x = random_matrix(&mut rng, 1, 96, 1.0);
        let bias: Vec<f32> = (0..16).map(|i| i as f32 * 0.01).collect();
        // f32 reference: x · w^T + b over rows of w.
        let mut want = [0f32; 16];
        for (r, wr) in want.iter_mut().enumerate() {
            let mut acc = 0f32;
            for c in 0..96 {
                acc += x.data()[c] * w.data()[r * 96 + c];
            }
            *wr = acc + bias[r];
        }
        let qw = QuantTensor::quantize(&w);
        let mut qx = vec![0i8; 96];
        let p = quantize_row_into(x.data(), &mut qx);
        let mut got = vec![0f32; 16];
        qmatvec_into(&qw, &qx, p, Some(&bias), &mut got);
        for r in 0..16 {
            assert!(
                (want[r] - got[r]).abs() < 0.05,
                "row {r}: f32 {} vs int8 {}",
                want[r],
                got[r]
            );
        }
    }

    #[test]
    fn quantize_transposed_matches_manual_transpose() {
        let mut rng = TensorRng::seed(9);
        let t = random_matrix(&mut rng, 12, 5, 2.0);
        let mut tt = Tensor::zeros(&[5, 12]);
        for r in 0..12 {
            for c in 0..5 {
                tt.data_mut()[c * 12 + r] = t.data()[r * 5 + c];
            }
        }
        let a = QuantTensor::quantize_transposed(&t);
        let b = QuantTensor::quantize(&tt);
        assert_eq!(a.data(), b.data());
        assert_eq!(a.scales(), b.scales());
        assert_eq!(a.zeros(), b.zeros());
        assert_eq!(a.row_sums(), b.row_sums());
    }

    #[test]
    fn backends_agree_bitwise_and_counters_move() {
        let mut rng = TensorRng::seed(23);
        let w = random_matrix(&mut rng, 9, 131, 1.0);
        let x = random_matrix(&mut rng, 1, 131, 1.0);
        let qw = QuantTensor::quantize(&w);
        let mut qx = vec![0i8; 131];
        let p = quantize_row_into(x.data(), &mut qx);
        let run = |be: Backend| {
            simd::with_backend(be, || {
                let mut out = vec![0f32; 9];
                qmatvec_into(&qw, &qx, p, None, &mut out);
                let mut deq = vec![0f32; 131 * 2];
                gather_dequant_into(&qw, &[3, 7], &mut deq);
                (out, deq)
            })
        };
        let before = (quant_scalar_kernels(), quant_vector_kernels());
        let scalar = run(Backend::Scalar);
        assert!(
            quant_scalar_kernels() > before.0,
            "scalar counter must move"
        );
        for be in [Backend::Avx2, Backend::Avx512] {
            let vec = run(be);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&scalar.0), bits(&vec.0), "{be:?} qmatvec diverged");
            assert_eq!(bits(&scalar.1), bits(&vec.1), "{be:?} dequant diverged");
        }
        if simd::hardware_backend() != Backend::Scalar {
            assert!(
                quant_vector_kernels() > before.1,
                "vector counter must move"
            );
        }
    }

    #[test]
    fn borrowed_parts_read_identically_and_keepalive_holds() {
        let mut rng = TensorRng::seed(31);
        let t = random_matrix(&mut rng, 4, 16, 1.0);
        let owned = QuantTensor::quantize(&t);
        // Back the borrowed view with boxed copies owned by one Arc.
        struct Backing {
            data: Vec<i8>,
            scales: Vec<f32>,
            zeros: Vec<i8>,
            sums: Vec<i32>,
        }
        let keep = Arc::new(Backing {
            data: owned.data().to_vec(),
            scales: owned.scales().to_vec(),
            zeros: owned.zeros().to_vec(),
            sums: owned.row_sums().to_vec(),
        });
        let borrowed = unsafe {
            QuantTensor::from_borrowed_parts(
                4,
                16,
                keep.data.as_ptr(),
                keep.scales.as_ptr(),
                keep.zeros.as_ptr(),
                keep.sums.as_ptr(),
                keep.clone(),
            )
        };
        assert!(borrowed.is_borrowed() && !owned.is_borrowed());
        let weak = Arc::downgrade(&keep);
        drop(keep);
        assert!(
            weak.upgrade().is_some(),
            "tensor must keep the backing alive"
        );
        assert_eq!(owned.data(), borrowed.data());
        assert_eq!(owned.row_sums(), borrowed.row_sums());
        let mut a = vec![0f32; 16];
        let mut b = vec![0f32; 16];
        owned.dequant_row_into(2, &mut a);
        borrowed.dequant_row_into(2, &mut b);
        assert_eq!(a, b);
        drop(borrowed);
        assert!(
            weak.upgrade().is_none(),
            "backing must free after last drop"
        );
    }
}
