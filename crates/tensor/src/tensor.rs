//! The core [`Tensor`] type: a row-major, contiguous dense array of `f32`.

use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// The shape is dynamic (`Vec<usize>`); most of the workspace uses rank 1 and
/// rank 2. The last axis varies fastest, so a `[rows, cols]` tensor stores row
/// `r` at `data[r * cols .. (r + 1) * cols]`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    /// If `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "Tensor::from_vec: buffer of {} elements cannot have shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A rank-1 tensor holding `0.0, 1.0, …, (n-1) as f32`.
    pub fn arange(n: usize) -> Self {
        Tensor {
            shape: vec![n],
            data: (0..n).map(|i| i as f32).collect(),
        }
    }

    /// Assembles a tensor from a shape vector and a data buffer, both owned.
    ///
    /// Unlike [`Tensor::from_vec`] this takes the shape by value, so callers
    /// that recycle shape vectors (the buffer pool) avoid the `to_vec` copy.
    ///
    /// # Panics
    /// If `data.len()` does not equal the product of `shape`.
    pub fn from_parts(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "Tensor::from_parts: buffer of {} elements cannot have shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// Consumes the tensor and returns its shape vector and data buffer, so
    /// both allocations can be recycled (see `bufpool`).
    pub fn into_parts(self) -> (Vec<usize>, Vec<f32>) {
        (self.shape, self.data)
    }

    /// Builds a rank-2 tensor from rows; every row must have equal length.
    ///
    /// # Panics
    /// If rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "Tensor::from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Tensor::from_rows: row {i} has len {} expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Tensor {
            shape: vec![rows.len(), cols],
            data,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows, treating the tensor as a matrix.
    ///
    /// # Panics
    /// If rank is not 2.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(
            self.rank(),
            2,
            "Tensor::rows: expected rank-2, got shape {:?}",
            self.shape
        );
        self.shape[0]
    }

    /// Number of columns, treating the tensor as a matrix.
    ///
    /// # Panics
    /// If rank is not 2.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(
            self.rank(),
            2,
            "Tensor::cols: expected rank-2, got shape {:?}",
            self.shape
        );
        self.shape[1]
    }

    /// Element access for rank-2 tensors.
    ///
    /// # Panics
    /// If rank is not 2 or indices are out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(
            r < rows && c < cols,
            "Tensor::at: ({r},{c}) out of bounds for {:?}",
            self.shape
        );
        self.data[r * cols + c]
    }

    /// Mutable element access for rank-2 tensors.
    ///
    /// # Panics
    /// If rank is not 2 or indices are out of bounds.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(
            r < rows && c < cols,
            "Tensor::at_mut: ({r},{c}) out of bounds for {:?}",
            self.shape
        );
        &mut self.data[r * cols + c]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor viewing the same data with a new shape.
    ///
    /// # Panics
    /// If the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "Tensor::reshape: cannot view {:?} ({} elems) as {:?} ({} elems)",
            self.shape,
            self.data.len(),
            shape,
            n
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// In-place reshape (no copy).
    ///
    /// # Panics
    /// If the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "Tensor::reshape_in_place: element count mismatch"
        );
        self.shape = shape.to_vec();
    }

    /// Matrix transpose for rank-2 tensors (copies).
    ///
    /// # Panics
    /// If rank is not 2.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Treats a rank-1 tensor as a 1×n row matrix.
    ///
    /// # Panics
    /// If rank is not 1.
    pub fn as_row_matrix(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            1,
            "Tensor::as_row_matrix: expected rank-1, got {:?}",
            self.shape
        );
        Tensor {
            shape: vec![1, self.data.len()],
            data: self.data.clone(),
        }
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: vec![self.data.len()],
            data: self.data.clone(),
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3, 3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[2]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[4], 2.5).data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_diagonal() {
        let e = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(e.at(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn arange_values() {
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_builds_matrix() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.at(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "row 1")]
    fn from_rows_ragged_panics() {
        let _ = Tensor::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(2, 1), 6.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.at(1, 0), 3.0);
        let mut u = t.clone();
        u.reshape_in_place(&[3, 2]);
        assert_eq!(u.shape(), &[3, 2]);
        assert_eq!(u.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_mismatch_panics() {
        let _ = Tensor::arange(6).reshape(&[4, 2]);
    }

    #[test]
    fn as_row_matrix_shape() {
        let t = Tensor::arange(3).as_row_matrix();
        assert_eq!(t.shape(), &[1, 3]);
    }

    #[test]
    fn flatten_rank() {
        let t = Tensor::zeros(&[2, 3]).flatten();
        assert_eq!(t.shape(), &[6]);
    }

    #[test]
    fn debug_is_compact_for_large_tensors() {
        let s = format!("{:?}", Tensor::zeros(&[100, 100]));
        assert!(s.len() < 100, "debug output too verbose: {s}");
    }
}
