//! Matrix multiplication kernels.
//!
//! All kernels use the `ikj` loop order so the innermost loop walks both the
//! output row and the right operand row contiguously — the standard BLAS-free
//! trick from the Rust Performance Book's "bounds-check friendly iteration"
//! advice. At the matrix sizes this workspace uses (≲ 512 per side) this is
//! within a small factor of a tuned BLAS and keeps the crate dependency-free.

use crate::Tensor;

impl Tensor {
    /// Matrix product `self · other` for rank-2 tensors.
    ///
    /// # Panics
    /// If either operand is not rank-2 or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "Tensor::matmul: inner dimension mismatch {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.data(), other.data(), out.data_mut(), m, k, n);
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// `self` is `[k, m]`, `other` is `[k, n]`, result is `[m, n]`.
    ///
    /// # Panics
    /// If shapes disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "Tensor::matmul_tn: leading dimension mismatch {:?}ᵀ · {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        let o = out.data_mut();
        // out[i][j] += a[l][i] * b[l][j]  — accumulate one rank-1 update per l;
        // both inner walks are contiguous.
        for l in 0..k {
            let arow = &a[l * m..(l + 1) * m];
            let brow = &b[l * n..(l + 1) * n];
            for (i, &ai) in arow.iter().enumerate() {
                if ai == 0.0 {
                    continue;
                }
                let orow = &mut o[i * n..(i + 1) * n];
                for (oj, &bj) in orow.iter_mut().zip(brow) {
                    *oj += ai * bj;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// `self` is `[m, k]`, `other` is `[n, k]`, result is `[m, n]`.
    ///
    /// # Panics
    /// If shapes disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "Tensor::matmul_nt: trailing dimension mismatch {:?} · {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        let o = out.data_mut();
        // out[i][j] = dot(a_row_i, b_row_j) — both operand walks contiguous.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * n..(i + 1) * n];
            for (j, oj) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                *oj = dot(arow, brow);
            }
        }
        out
    }

    /// Matrix–vector product: `self` is `[m, k]`, `v` has `k` elements;
    /// the result has `m` elements (rank 1).
    ///
    /// # Panics
    /// If shapes disagree.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        assert_eq!(
            v.len(),
            k,
            "Tensor::matvec: {:?} · vec of len {}",
            self.shape(),
            v.len()
        );
        let a = self.data();
        let x = v.data();
        let data: Vec<f32> = (0..m).map(|i| dot(&a[i * k..(i + 1) * k], x)).collect();
        Tensor::from_vec(data, &[m])
    }

    /// Outer product of two rank-1 tensors: result is `[self.len(), other.len()]`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        let (m, n) = (self.len(), other.len());
        let mut out = Tensor::zeros(&[m, n]);
        let o = out.data_mut();
        for (i, &a) in self.data().iter().enumerate() {
            let row = &mut o[i * n..(i + 1) * n];
            for (r, &b) in row.iter_mut().zip(other.data()) {
                *r = a * b;
            }
        }
        out
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four-way unrolled accumulation: lets the compiler vectorise and avoids
    // a long sequential dependency chain on the accumulator.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for c in 0..chunks {
        let i = c * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Writes `a · b` into `out` where `a` is `[m, k]`, `b` is `[k, n]`.
///
/// Exposed for `imre-nn`'s fused kernels.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (l, &al) in arow.iter().enumerate() {
            if al == 0.0 {
                continue;
            }
            let brow = &b[l * n..(l + 1) * n];
            for (oj, &bj) in orow.iter_mut().zip(brow) {
                *oj += al * bj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        assert_eq!(a.matmul(&Tensor::eye(4)).data(), a.data());
        assert_eq!(Tensor::eye(3).matmul(&a).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32 * 0.5).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|i| i as f32 - 4.0).collect(), &[3, 4]);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_close(fast.data(), slow.data(), 1e-5);
        assert_eq!(fast.shape(), &[2, 4]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[2, 4]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).sin()).collect(), &[3, 4]);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_close(fast.data(), slow.data(), 1e-5);
        assert_eq!(fast.shape(), &[2, 3]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let v = Tensor::from_vec(vec![1.0, 0.5, -1.0], &[3]);
        let fast = a.matvec(&v);
        let slow = a.matmul(&Tensor::from_vec(v.data().to_vec(), &[3, 1]));
        assert_close(fast.data(), slow.data(), 1e-6);
        assert_eq!(fast.shape(), &[2]);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        let a: Vec<f32> = (0..23).map(|i| (i as f32).cos()).collect();
        let b: Vec<f32> = (0..23).map(|i| (i as f32).sin()).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-5);
    }

    #[test]
    fn matmul_associativity_approx() {
        let a = Tensor::from_vec((0..4).map(|i| i as f32 * 0.1).collect(), &[2, 2]);
        let b = Tensor::from_vec((0..4).map(|i| 1.0 - i as f32 * 0.2).collect(), &[2, 2]);
        let c = Tensor::from_vec((0..4).map(|i| (i as f32).exp() * 0.01).collect(), &[2, 2]);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(left.data(), right.data(), 1e-5);
    }
}
