//! Matrix multiplication kernels, row-parallel on the [`crate::pool`] backend
//! and SIMD-dispatched through [`crate::simd`].
//!
//! Each output row is produced by [`simd::row_times_mat`] (register-blocked
//! AVX2/AVX-512 tiles with a scalar `ikj` fallback) for the `nn`/`tn` forms,
//! or by the fixed-lane [`simd::dot`] for the `nt`/`matvec` dot forms. All
//! backends perform the same IEEE ops per output element in the same order,
//! so backend choice never changes the bits (see `simd` module docs).
//!
//! Parallel kernels split the *output* into row ranges whose bounds depend
//! only on the problem shape, and every output element is accumulated by one
//! task in the same ascending-`l` order the sequential kernel uses — so
//! results are bit-identical at any thread count (see `pool` module docs).

use crate::pool;
use crate::simd;
use crate::Tensor;

/// Target multiply-adds per parallel task. Sized so a chunk costs ≫ the
/// measured pool dispatch overhead (`dispatch_inline_ns` ≈ 650 ns in
/// `BENCH_PR2.json`) *at the SIMD kernel's speed*: at ~55 GFLOP/s an
/// 8 Mi-MAC chunk runs for ~300 µs, making dispatch and scheduler noise
/// < 1% even when workers timeshare a small box. Everything below the
/// grain (the conv256 workload, every matmul in a smoke-scale PCNN step)
/// runs inline. Derived from shape only — never from the thread count — so
/// the partition is identical no matter how many workers execute it.
const GRAIN_MACS: usize = 8 * 1024 * 1024;

/// Rows per task for an `m × n`-output kernel with `k`-deep reductions.
#[inline]
fn row_grain(k: usize, n: usize) -> usize {
    (GRAIN_MACS / (k * n).max(1)).max(1)
}

impl Tensor {
    /// Matrix product `self · other` for rank-2 tensors.
    ///
    /// # Panics
    /// If either operand is not rank-2 or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "Tensor::matmul: inner dimension mismatch {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.data(), other.data(), out.data_mut(), m, k, n);
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// `self` is `[k, m]`, `other` is `[k, n]`, result is `[m, n]`.
    ///
    /// # Panics
    /// If shapes disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "Tensor::matmul_tn: leading dimension mismatch {:?}ᵀ · {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        matmul_tn_into(self.data(), other.data(), out.data_mut(), m, k, n);
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// `self` is `[m, k]`, `other` is `[n, k]`, result is `[m, n]`.
    ///
    /// # Panics
    /// If shapes disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "Tensor::matmul_nt: trailing dimension mismatch {:?} · {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        matmul_nt_into(self.data(), other.data(), out.data_mut(), m, k, n);
        out
    }

    /// Matrix–vector product: `self` is `[m, k]`, `v` has `k` elements;
    /// the result has `m` elements (rank 1).
    ///
    /// # Panics
    /// If shapes disagree.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        assert_eq!(
            v.len(),
            k,
            "Tensor::matvec: {:?} · vec of len {}",
            self.shape(),
            v.len()
        );
        let a = self.data();
        let x = v.data();
        let be = simd::backend();
        simd::note(be);
        let mut out = Tensor::zeros(&[m]);
        pool::for_rows(out.data_mut(), m, 1, row_grain(k, 1), |lo, hi, shard| {
            for (s, i) in shard.iter_mut().zip(lo..hi) {
                *s = simd::dot(be, &a[i * k..(i + 1) * k], x);
            }
        });
        out
    }

    /// Matrix–vector product written into a pre-shaped `[m]` destination;
    /// same partition and dot kernel as [`Tensor::matvec`] — bit-identical.
    pub fn matvec_into(&self, v: &Tensor, out: &mut Tensor) {
        let (m, k) = (self.rows(), self.cols());
        assert_eq!(
            v.len(),
            k,
            "Tensor::matvec_into: {:?} · vec of len {}",
            self.shape(),
            v.len()
        );
        assert_eq!(
            out.shape(),
            [m],
            "Tensor::matvec_into: destination shape {:?} for {m} rows",
            out.shape()
        );
        let a = self.data();
        let x = v.data();
        let be = simd::backend();
        simd::note(be);
        pool::for_rows(out.data_mut(), m, 1, row_grain(k, 1), |lo, hi, shard| {
            for (s, i) in shard.iter_mut().zip(lo..hi) {
                *s = simd::dot(be, &a[i * k..(i + 1) * k], x);
            }
        });
    }

    /// Outer product of two rank-1 tensors: result is `[self.len(), other.len()]`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        let (m, n) = (self.len(), other.len());
        let mut out = Tensor::zeros(&[m, n]);
        let o = out.data_mut();
        for (i, &a) in self.data().iter().enumerate() {
            let row = &mut o[i * n..(i + 1) * n];
            for (r, &b) in row.iter_mut().zip(other.data()) {
                *r = a * b;
            }
        }
        out
    }
}

/// Writes `a · b` into `out` where `a` is `[m, k]`, `b` is `[k, n]`.
///
/// Exposed for `imre-nn`'s fused kernels. Parallel over output-row ranges;
/// each range is one [`simd::rows_times_mat`] call (four output rows per
/// register tile on the vector backends) accumulating every element in
/// ascending-`l` order, so backend and threading both leave the float
/// result bit-identical to the naive triple loop.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let be = simd::backend();
    simd::note(be);
    pool::for_rows(out, m, n, row_grain(k, n), |lo, hi, shard| {
        simd::rows_times_mat(be, a, lo * k, k, 1, hi - lo, k, b, n, shard);
    });
}

/// Writes `aᵀ · b` into `out` where `a` is `[k, m]`, `b` is `[k, n]`.
///
/// Parallel over ranges of output rows — i.e. over *columns* of `a`. Row `i`
/// of the output walks column `i` of `a` (stride `m`) through the same
/// multi-row microkernel, so every `out[i][j]` accumulates in exactly the
/// ascending-`l` order the sequential rank-1-update sweep uses.
pub fn matmul_tn_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let be = simd::backend();
    simd::note(be);
    pool::for_rows(out, m, n, row_grain(k, n), |lo, hi, shard| {
        simd::rows_times_mat(be, a, lo, 1, m, hi - lo, k, b, n, shard);
    });
}

/// Writes `a · bᵀ` into `out` where `a` is `[m, k]`, `b` is `[n, k]`.
///
/// Parallel over output-row ranges; each element is one independent
/// fixed-lane [`simd::dot`], so partitioning cannot change results.
pub fn matmul_nt_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    let be = simd::backend();
    simd::note(be);
    pool::for_rows(out, m, n, row_grain(k, n), |lo, hi, shard| {
        for i in lo..hi {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut shard[(i - lo) * n..(i - lo + 1) * n];
            for (j, oj) in orow.iter_mut().enumerate() {
                *oj = simd::dot(be, arow, &b[j * k..(j + 1) * k]);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::simd::Backend;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        assert_eq!(a.matmul(&Tensor::eye(4)).data(), a.data());
        assert_eq!(Tensor::eye(3).matmul(&a).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32 * 0.5).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|i| i as f32 - 4.0).collect(), &[3, 4]);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_close(fast.data(), slow.data(), 1e-5);
        assert_eq!(fast.shape(), &[2, 4]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[2, 4]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).sin()).collect(), &[3, 4]);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_close(fast.data(), slow.data(), 1e-5);
        assert_eq!(fast.shape(), &[2, 3]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let v = Tensor::from_vec(vec![1.0, 0.5, -1.0], &[3]);
        let fast = a.matvec(&v);
        let slow = a.matmul(&Tensor::from_vec(v.data().to_vec(), &[3, 1]));
        assert_close(fast.data(), slow.data(), 1e-6);
        assert_eq!(fast.shape(), &[2]);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn matmul_associativity_approx() {
        let a = Tensor::from_vec((0..4).map(|i| i as f32 * 0.1).collect(), &[2, 2]);
        let b = Tensor::from_vec((0..4).map(|i| 1.0 - i as f32 * 0.2).collect(), &[2, 2]);
        let c = Tensor::from_vec((0..4).map(|i| (i as f32).exp() * 0.01).collect(), &[2, 2]);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(left.data(), right.data(), 1e-5);
    }

    /// Large enough to cross the parallel grain (`k·n` = 90 000 MACs/row ⇒
    /// ~93-row chunks): results must be bitwise equal across pool sizes
    /// (the core determinism contract).
    #[test]
    fn matmul_bit_identical_across_pool_sizes() {
        let mut rng = crate::TensorRng::seed(42);
        let a = Tensor::rand_uniform(&[130, 300], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[300, 300], -1.0, 1.0, &mut rng);
        let bt = b.transpose();
        let at = a.transpose();
        let p1 = crate::pool::ThreadPool::new(1);
        let p4 = crate::pool::ThreadPool::new(4);
        let run = |p: &crate::pool::ThreadPool| {
            crate::pool::with_pool(p, || {
                (
                    a.matmul(&b),
                    at.matmul_tn(&b),
                    a.matmul_nt(&bt),
                    a.matvec(&bt.row_tensor(0)),
                )
            })
        };
        let (c1, tn1, nt1, mv1) = run(&p1);
        let (c4, tn4, nt4, mv4) = run(&p4);
        assert_eq!(c1.data(), c4.data());
        assert_eq!(tn1.data(), tn4.data());
        assert_eq!(nt1.data(), nt4.data());
        assert_eq!(mv1.data(), mv4.data());
    }

    /// Backend choice must not change a single bit of any matmul variant.
    #[test]
    fn matmul_variants_bit_identical_across_backends() {
        let mut rng = crate::TensorRng::seed(7);
        let a = Tensor::rand_uniform(&[33, 70], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[70, 53], -2.0, 2.0, &mut rng);
        let bt = b.transpose();
        let at = a.transpose();
        let run = |be: Backend| {
            crate::simd::with_backend(be, || {
                (
                    a.matmul(&b),
                    at.matmul_tn(&b),
                    a.matmul_nt(&bt),
                    a.matvec(&bt.row_tensor(0)),
                )
            })
        };
        let (c_s, tn_s, nt_s, mv_s) = run(Backend::Scalar);
        for be in [Backend::Avx2, Backend::Avx512] {
            let (c, tn, nt, mv) = run(be);
            assert_eq!(c_s.data(), c.data(), "matmul vs {}", be.name());
            assert_eq!(tn_s.data(), tn.data(), "matmul_tn vs {}", be.name());
            assert_eq!(nt_s.data(), nt.data(), "matmul_nt vs {}", be.name());
            assert_eq!(mv_s.data(), mv.data(), "matvec vs {}", be.name());
        }
    }

    /// Grain sizing: a sub-grain matmul must take the inline fast path on a
    /// multi-thread pool, and a super-grain one must dispatch to workers.
    #[test]
    fn grain_sizing_inline_vs_dispatch() {
        let p4 = crate::pool::ThreadPool::new(4);
        crate::pool::with_pool(&p4, || {
            let mut rng = crate::TensorRng::seed(3);
            let small_a = Tensor::rand_uniform(&[64, 64], -1.0, 1.0, &mut rng);
            let small_b = Tensor::rand_uniform(&[64, 64], -1.0, 1.0, &mut rng);
            let before = p4.dispatched_jobs();
            let _ = small_a.matmul(&small_b); // 64·64 MACs/row ⇒ grain ≫ 64 rows
            assert_eq!(
                p4.dispatched_jobs(),
                before,
                "sub-grain matmul must stay inline"
            );
            let big_a = Tensor::rand_uniform(&[64, 512], -1.0, 1.0, &mut rng);
            let big_b = Tensor::rand_uniform(&[512, 512], -1.0, 1.0, &mut rng);
            let _ = big_a.matmul(&big_b); // 512·512 MACs/row ⇒ 32-row chunks
            assert!(
                p4.dispatched_jobs() > before,
                "super-grain matmul must dispatch to the pool"
            );
        });
    }
}
