//! Matrix multiplication kernels, row-parallel on the [`crate::pool`] backend.
//!
//! All kernels use the `ikj` loop order so the innermost loop walks both the
//! output row and the right operand row contiguously — the standard BLAS-free
//! trick from the Rust Performance Book's "bounds-check friendly iteration"
//! advice. At the matrix sizes this workspace uses (≲ 512 per side) this is
//! within a small factor of a tuned BLAS and keeps the crate dependency-free.
//!
//! Parallel kernels split the *output* into row ranges whose bounds depend
//! only on the problem shape, and every output element is accumulated by one
//! task in the same ascending-`l` order the sequential kernel uses — so
//! results are bit-identical at any thread count (see `pool` module docs).
//! The reduction (`k`) dimension is additionally cache-blocked so a panel of
//! `b` stays hot while a chunk of output rows streams over it.

use crate::pool;
use crate::Tensor;

/// Target multiply-adds per parallel task; keeps dispatch overhead well
/// under the compute cost of a chunk. Derived from shape only — never from
/// the thread count — so the partition (and thus any rounding behaviour)
/// is identical no matter how many workers execute it.
const GRAIN_FLOPS: usize = 64 * 1024;

/// Reduction-dimension block: `KC × n` floats of `b` (≲ 64 KiB for n = 128)
/// stay in L1/L2 while a row chunk streams over them.
const KC: usize = 128;

/// Rows per task for an `m × n`-output kernel with `k`-deep reductions.
#[inline]
fn row_grain(k: usize, n: usize) -> usize {
    (GRAIN_FLOPS / (k * n).max(1)).max(1)
}

impl Tensor {
    /// Matrix product `self · other` for rank-2 tensors.
    ///
    /// # Panics
    /// If either operand is not rank-2 or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "Tensor::matmul: inner dimension mismatch {:?} · {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self.data(), other.data(), out.data_mut(), m, k, n);
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// `self` is `[k, m]`, `other` is `[k, n]`, result is `[m, n]`.
    ///
    /// # Panics
    /// If shapes disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "Tensor::matmul_tn: leading dimension mismatch {:?}ᵀ · {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        matmul_tn_into(self.data(), other.data(), out.data_mut(), m, k, n);
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// `self` is `[m, k]`, `other` is `[n, k]`, result is `[m, n]`.
    ///
    /// # Panics
    /// If shapes disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(
            k,
            k2,
            "Tensor::matmul_nt: trailing dimension mismatch {:?} · {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        matmul_nt_into(self.data(), other.data(), out.data_mut(), m, k, n);
        out
    }

    /// Matrix–vector product: `self` is `[m, k]`, `v` has `k` elements;
    /// the result has `m` elements (rank 1).
    ///
    /// # Panics
    /// If shapes disagree.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        assert_eq!(
            v.len(),
            k,
            "Tensor::matvec: {:?} · vec of len {}",
            self.shape(),
            v.len()
        );
        let a = self.data();
        let x = v.data();
        let mut out = Tensor::zeros(&[m]);
        pool::for_rows(out.data_mut(), m, 1, row_grain(k, 1), |lo, hi, shard| {
            for (s, i) in shard.iter_mut().zip(lo..hi) {
                *s = dot(&a[i * k..(i + 1) * k], x);
            }
        });
        out
    }

    /// Matrix–vector product written into a pre-shaped `[m]` destination;
    /// same partition and dot kernel as [`Tensor::matvec`] — bit-identical.
    pub fn matvec_into(&self, v: &Tensor, out: &mut Tensor) {
        let (m, k) = (self.rows(), self.cols());
        assert_eq!(
            v.len(),
            k,
            "Tensor::matvec_into: {:?} · vec of len {}",
            self.shape(),
            v.len()
        );
        assert_eq!(
            out.shape(),
            [m],
            "Tensor::matvec_into: destination shape {:?} for {m} rows",
            out.shape()
        );
        let a = self.data();
        let x = v.data();
        pool::for_rows(out.data_mut(), m, 1, row_grain(k, 1), |lo, hi, shard| {
            for (s, i) in shard.iter_mut().zip(lo..hi) {
                *s = dot(&a[i * k..(i + 1) * k], x);
            }
        });
    }

    /// Outer product of two rank-1 tensors: result is `[self.len(), other.len()]`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        let (m, n) = (self.len(), other.len());
        let mut out = Tensor::zeros(&[m, n]);
        let o = out.data_mut();
        for (i, &a) in self.data().iter().enumerate() {
            let row = &mut o[i * n..(i + 1) * n];
            for (r, &b) in row.iter_mut().zip(other.data()) {
                *r = a * b;
            }
        }
        out
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four-way unrolled accumulation: lets the compiler vectorise and avoids
    // a long sequential dependency chain on the accumulator.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for c in 0..chunks {
        let i = c * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Writes `a · b` into `out` where `a` is `[m, k]`, `b` is `[k, n]`.
///
/// Exposed for `imre-nn`'s fused kernels. Parallel over output-row ranges;
/// within a range the reduction is `KC`-blocked but still accumulates each
/// element in ascending-`l` order, so blocking and threading both leave the
/// float result bit-identical to the naive triple loop.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    pool::for_rows(out, m, n, row_grain(k, n), |lo, hi, shard| {
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for i in lo..hi {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut shard[(i - lo) * n..(i - lo + 1) * n];
                for (l, &al) in arow.iter().enumerate().take(k1).skip(k0) {
                    if al == 0.0 {
                        continue;
                    }
                    let brow = &b[l * n..(l + 1) * n];
                    for (oj, &bj) in orow.iter_mut().zip(brow) {
                        *oj += al * bj;
                    }
                }
            }
        }
    });
}

/// Writes `aᵀ · b` into `out` where `a` is `[k, m]`, `b` is `[k, n]`.
///
/// Parallel over ranges of output rows — i.e. over *columns* of `a`. Each
/// task replays the full ascending-`l` rank-1-update sweep restricted to its
/// own column segment, so every `out[i][j]` accumulates in exactly the order
/// the sequential kernel uses.
pub fn matmul_tn_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    pool::for_rows(out, m, n, row_grain(k, n), |lo, hi, shard| {
        // out[i][j] += a[l][i] * b[l][j] — one rank-1 update per l; both
        // inner walks are contiguous. Only columns lo..hi of `a` are read.
        for l in 0..k {
            let aseg = &a[l * m + lo..l * m + hi];
            let brow = &b[l * n..(l + 1) * n];
            for (ii, &ai) in aseg.iter().enumerate() {
                if ai == 0.0 {
                    continue;
                }
                let orow = &mut shard[ii * n..(ii + 1) * n];
                for (oj, &bj) in orow.iter_mut().zip(brow) {
                    *oj += ai * bj;
                }
            }
        }
    });
}

/// Writes `a · bᵀ` into `out` where `a` is `[m, k]`, `b` is `[n, k]`.
///
/// Parallel over output-row ranges; each element is one independent dot
/// product, so partitioning cannot change results.
pub fn matmul_nt_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    pool::for_rows(out, m, n, row_grain(k, n), |lo, hi, shard| {
        for i in lo..hi {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut shard[(i - lo) * n..(i - lo + 1) * n];
            for (j, oj) in orow.iter_mut().enumerate() {
                *oj = dot(arow, &b[j * k..(j + 1) * k]);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        assert_eq!(a.matmul(&Tensor::eye(4)).data(), a.data());
        assert_eq!(Tensor::eye(3).matmul(&a).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32 * 0.5).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|i| i as f32 - 4.0).collect(), &[3, 4]);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_close(fast.data(), slow.data(), 1e-5);
        assert_eq!(fast.shape(), &[2, 4]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[2, 4]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).sin()).collect(), &[3, 4]);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_close(fast.data(), slow.data(), 1e-5);
        assert_eq!(fast.shape(), &[2, 3]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let v = Tensor::from_vec(vec![1.0, 0.5, -1.0], &[3]);
        let fast = a.matvec(&v);
        let slow = a.matmul(&Tensor::from_vec(v.data().to_vec(), &[3, 1]));
        assert_close(fast.data(), slow.data(), 1e-6);
        assert_eq!(fast.shape(), &[2]);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]);
        let o = a.outer(&b);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        let a: Vec<f32> = (0..23).map(|i| (i as f32).cos()).collect();
        let b: Vec<f32> = (0..23).map(|i| (i as f32).sin()).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-5);
    }

    #[test]
    fn matmul_associativity_approx() {
        let a = Tensor::from_vec((0..4).map(|i| i as f32 * 0.1).collect(), &[2, 2]);
        let b = Tensor::from_vec((0..4).map(|i| 1.0 - i as f32 * 0.2).collect(), &[2, 2]);
        let c = Tensor::from_vec((0..4).map(|i| (i as f32).exp() * 0.01).collect(), &[2, 2]);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(left.data(), right.data(), 1e-5);
    }

    /// Large enough to cross the parallel grain: results must be bitwise
    /// equal across pool sizes (the core determinism contract).
    #[test]
    fn matmul_bit_identical_across_pool_sizes() {
        let mut rng = crate::TensorRng::seed(42);
        let a = Tensor::rand_uniform(&[130, 70], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[70, 90], -1.0, 1.0, &mut rng);
        let bt = b.transpose();
        let at = a.transpose();
        let p1 = crate::pool::ThreadPool::new(1);
        let p4 = crate::pool::ThreadPool::new(4);
        let run = |p: &crate::pool::ThreadPool| {
            crate::pool::with_pool(p, || {
                (
                    a.matmul(&b),
                    at.matmul_tn(&b),
                    a.matmul_nt(&bt),
                    a.matvec(&bt.row_tensor(0)),
                )
            })
        };
        let (c1, tn1, nt1, mv1) = run(&p1);
        let (c4, tn4, nt4, mv4) = run(&p4);
        assert_eq!(c1.data(), c4.data());
        assert_eq!(tn1.data(), tn4.data());
        assert_eq!(nt1.data(), nt4.data());
        assert_eq!(mv1.data(), mv4.data());
    }
}
