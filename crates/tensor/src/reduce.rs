//! Reductions and normalisations: sums, means, axis max (with argmax, the
//! backbone of piecewise max pooling), and numerically stable softmax.
//!
//! Row-independent normalisations (`softmax_rows`) are row-parallel on the
//! [`crate::pool`] backend; true reductions keep their sequential
//! accumulation order so results stay bit-identical at any thread count.

use crate::pool;
use crate::simd;
use crate::Tensor;

/// Target elements per parallel task for row-parallel normalisations.
/// Softmax costs ~5 ns/element (the `exp`), so a chunk runs for ≫ the
/// ~650 ns dispatch cost; typical logit matrices stay on the inline path.
const ROW_GRAIN_ELEMS: usize = 64 * 1024;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Column-wise sum of a rank-2 tensor → rank-1 of length `cols`.
    pub fn sum_rows(&self) -> Tensor {
        let cols = self.cols();
        let mut out = vec![0.0f32; cols];
        for row in self.data().chunks(cols) {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Column-wise sum written into a pre-shaped `[cols]` destination.
    /// Re-zeroes `out` first, then accumulates rows in the same order as
    /// [`Tensor::sum_rows`] — bit-identical results.
    pub fn sum_rows_into(&self, out: &mut Tensor) {
        let cols = self.cols();
        assert_eq!(
            out.shape(),
            [cols],
            "Tensor::sum_rows_into: destination shape {:?} for {} columns",
            out.shape(),
            cols
        );
        let o = out.data_mut();
        o.fill(0.0);
        for row in self.data().chunks(cols) {
            for (oo, &x) in o.iter_mut().zip(row) {
                *oo += x;
            }
        }
    }

    /// Row-wise sum of a rank-2 tensor → rank-1 of length `rows`.
    pub fn sum_cols(&self) -> Tensor {
        let cols = self.cols();
        let data: Vec<f32> = self.data().chunks(cols).map(|r| r.iter().sum()).collect();
        let n = data.len();
        Tensor::from_vec(data, &[n])
    }

    /// Column-wise mean of a rank-2 tensor → rank-1 of length `cols`.
    pub fn mean_rows(&self) -> Tensor {
        let rows = self.rows() as f32;
        self.sum_rows().scale(1.0 / rows)
    }

    /// Column-wise mean written into a pre-shaped `[cols]` destination;
    /// same sum-then-scale op order as [`Tensor::mean_rows`].
    pub fn mean_rows_into(&self, out: &mut Tensor) {
        let inv = 1.0 / self.rows() as f32;
        self.sum_rows_into(out);
        for x in out.data_mut() {
            *x *= inv;
        }
    }

    /// Column-wise max over a contiguous row range `[lo, hi)`, returning the
    /// max values and the *absolute* row index achieving each max.
    ///
    /// This is the primitive behind (piecewise) max pooling: `imre-nn` calls
    /// it once per pooling segment and routes gradients through the argmax.
    ///
    /// # Panics
    /// If `lo >= hi`, `hi > rows`, or `self` is not rank-2.
    pub fn max_over_rows(&self, lo: usize, hi: usize) -> (Tensor, Vec<usize>) {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(
            lo < hi && hi <= rows,
            "Tensor::max_over_rows: empty or out-of-range segment [{lo}, {hi}) of {rows} rows"
        );
        let d = self.data();
        let mut vals = d[lo * cols..(lo + 1) * cols].to_vec();
        let mut idx = vec![lo; cols];
        for r in lo + 1..hi {
            let row = &d[r * cols..(r + 1) * cols];
            for c in 0..cols {
                if row[c] > vals[c] {
                    vals[c] = row[c];
                    idx[c] = r;
                }
            }
        }
        (Tensor::from_vec(vals, &[cols]), idx)
    }

    /// Values-only variant of [`Tensor::max_over_rows`] that writes into a
    /// caller-provided `cols`-long slice and skips the argmax bookkeeping
    /// entirely — inference tapes need only the pooled values, not the
    /// gradient routing. Identical comparison order, so the values are
    /// bit-identical to `max_over_rows(lo, hi).0`. Taking a raw slice lets
    /// piecewise pooling write every segment into one recycled buffer.
    ///
    /// # Panics
    /// If `lo >= hi`, `hi > rows`, `self` is not rank-2, or `out` does not
    /// hold exactly `cols` elements.
    pub fn max_over_rows_into(&self, lo: usize, hi: usize, out: &mut [f32]) {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(
            lo < hi && hi <= rows,
            "Tensor::max_over_rows_into: empty or out-of-range segment [{lo}, {hi}) of {rows} rows"
        );
        assert_eq!(
            out.len(),
            cols,
            "Tensor::max_over_rows_into: destination of len {} for {} columns",
            out.len(),
            cols
        );
        let d = self.data();
        let vals = out;
        vals.copy_from_slice(&d[lo * cols..(lo + 1) * cols]);
        for r in lo + 1..hi {
            let row = &d[r * cols..(r + 1) * cols];
            for (v, &x) in vals.iter_mut().zip(row) {
                if x > *v {
                    *v = x;
                }
            }
        }
    }

    /// Index of the maximum element of a rank-1 tensor (first on ties).
    ///
    /// # Panics
    /// If the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "Tensor::argmax: empty tensor");
        let mut best = 0;
        let d = self.data();
        for i in 1..d.len() {
            if d[i] > d[best] {
                best = i;
            }
        }
        best
    }

    /// Numerically stable softmax over a rank-1 tensor.
    pub fn softmax(&self) -> Tensor {
        let m = self.max();
        let exps: Vec<f32> = self.data().iter().map(|&x| (x - m).exp()).collect();
        let z: f32 = exps.iter().sum();
        Tensor::from_vec(exps.iter().map(|&e| e / z).collect(), self.shape())
    }

    /// Softmax written into a pre-shaped destination. Same max/exp/sum/div
    /// op order as [`Tensor::softmax`], so results are bit-identical, with
    /// zero temporaries: the exponentials land directly in `out`.
    pub fn softmax_into(&self, out: &mut Tensor) {
        assert_eq!(
            out.shape(),
            self.shape(),
            "Tensor::softmax_into: destination shape {:?} for source {:?}",
            out.shape(),
            self.shape()
        );
        let m = self.max();
        let o = out.data_mut();
        let mut z = 0.0f32;
        for (e, &x) in o.iter_mut().zip(self.data()) {
            *e = (x - m).exp();
        }
        for &e in o.iter() {
            z += e;
        }
        for e in o.iter_mut() {
            *e /= z;
        }
    }

    /// Numerically stable log-softmax over a rank-1 tensor.
    pub fn log_softmax(&self) -> Tensor {
        let m = self.max();
        let z: f32 = self.data().iter().map(|&x| (x - m).exp()).sum();
        let lz = z.ln() + m;
        self.map(|x| x - lz)
    }

    /// Row-wise softmax of a rank-2 tensor. Rows are independent, so this is
    /// row-parallel with bit-identical results at any thread count. The row
    /// max and partition-function sum use the fixed 8-lane reduction
    /// structure of [`crate::simd`] (identical on every backend); the `exp`
    /// stays scalar.
    pub fn softmax_rows(&self) -> Tensor {
        let (rows, cols) = (self.rows(), self.cols());
        let mut out = self.clone();
        let be = simd::backend();
        simd::note(be);
        let grain = (ROW_GRAIN_ELEMS / cols.max(1)).max(1);
        pool::for_rows(out.data_mut(), rows, cols, grain, |_, _, shard| {
            for row in shard.chunks_mut(cols) {
                softmax_row_in_place(be, row);
            }
        });
        out
    }

    /// Row-wise softmax written into a pre-shaped destination: copies the
    /// source row into `out`, then runs the identical in-place normalisation
    /// [`Tensor::softmax_rows`] uses, with the same partition — results are
    /// bit-identical at any thread count.
    pub fn softmax_rows_into(&self, out: &mut Tensor) {
        let (rows, cols) = (self.rows(), self.cols());
        assert_eq!(
            out.shape(),
            self.shape(),
            "Tensor::softmax_rows_into: destination shape {:?} for source {:?}",
            out.shape(),
            self.shape()
        );
        let a = self.data();
        let be = simd::backend();
        simd::note(be);
        let grain = (ROW_GRAIN_ELEMS / cols.max(1)).max(1);
        pool::for_rows(out.data_mut(), rows, cols, grain, |lo, hi, shard| {
            shard.copy_from_slice(&a[lo * cols..hi * cols]);
            for row in shard.chunks_mut(cols) {
                softmax_row_in_place(be, row);
            }
        });
    }
}

/// Shared per-row normalisation of the row-parallel softmax kernels:
/// lane-structured max, scalar `exp`, lane-structured sum, per-lane divide.
#[inline]
fn softmax_row_in_place(be: simd::Backend, row: &mut [f32]) {
    let m = simd::row_max(be, row);
    for x in row.iter_mut() {
        *x = (*x - m).exp();
    }
    let z = simd::row_sum(be, row);
    simd::div_inplace(be, row, z);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn sum_mean_max() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }

    #[test]
    fn row_and_col_sums() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.sum_rows().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_cols().data(), &[6.0, 15.0]);
        assert_eq!(t.mean_rows().data(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn max_over_rows_values_and_argmax() {
        let t = Tensor::from_vec(
            vec![
                1.0, 9.0, //
                5.0, 2.0, //
                3.0, 7.0, //
            ],
            &[3, 2],
        );
        let (v, idx) = t.max_over_rows(0, 3);
        assert_eq!(v.data(), &[5.0, 9.0]);
        assert_eq!(idx, vec![1, 0]);
        let (v2, idx2) = t.max_over_rows(1, 3);
        assert_eq!(v2.data(), &[5.0, 7.0]);
        assert_eq!(idx2, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "max_over_rows")]
    fn max_over_rows_empty_segment_panics() {
        let _ = Tensor::zeros(&[3, 2]).max_over_rows(2, 2);
    }

    #[test]
    fn argmax_first_tie() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0], &[4]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let t = Tensor::from_vec(vec![1000.0, 1000.0, 999.0], &[3]);
        let s = t.softmax();
        assert!((s.sum() - 1.0).abs() < 1e-5);
        assert!(s.data().iter().all(|x| x.is_finite() && *x > 0.0));
        assert!(s.data()[0] > s.data()[2]);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let t = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0], &[4]);
        let ls = t.log_softmax();
        let s = t.softmax();
        let exp_ls: Vec<f32> = ls.data().iter().map(|&x| x.exp()).collect();
        assert_close(&exp_ls, s.data(), 1e-5);
    }

    #[test]
    fn softmax_rows_each_row_normalised() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let row_sum: f32 = (0..3).map(|c| s.at(r, c)).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // shift invariance: rows differing by a constant have equal softmax
        assert_close(
            &[s.at(0, 0), s.at(0, 1), s.at(0, 2)],
            &[s.at(1, 0), s.at(1, 1), s.at(1, 2)],
            1e-5,
        );
    }
}
