//! Property-based tests for the tensor substrate: algebraic laws that must
//! hold for arbitrary shapes and values.

use imre_tensor::{assert_close, Tensor, TensorRng};
use proptest::prelude::*;

fn small_matrix(max_side: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_side, 1..=max_side).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]))
    })
}

fn vector(max_len: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_len).prop_flat_map(|n| {
        proptest::collection::vec(-10.0f32..10.0, n)
            .prop_map(move |data| Tensor::from_vec(data, &[n]))
    })
}

proptest! {
    #[test]
    fn add_commutes(m in small_matrix(6)) {
        let other = m.map(|x| x * 0.5 - 1.0);
        let ab = m.add(&other);
        let ba = other.add(&m);
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn sub_is_add_of_negation(m in small_matrix(6)) {
        let other = m.map(|x| (x + 2.0).sin());
        let direct = m.sub(&other);
        let via_neg = m.add(&other.scale(-1.0));
        assert_close(direct.data(), via_neg.data(), 1e-5);
    }

    #[test]
    fn transpose_is_involution(m in small_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_right(m in small_matrix(8)) {
        let (r, c) = (m.rows(), m.cols());
        assert_close(Tensor::eye(r).matmul(&m).data(), m.data(), 1e-4);
        assert_close(m.matmul(&Tensor::eye(c)).data(), m.data(), 1e-4);
    }

    #[test]
    fn matmul_transpose_identity(a in small_matrix(6), seed in 0u64..1000) {
        // (A · B)ᵀ == Bᵀ · Aᵀ
        let mut rng = TensorRng::seed(seed);
        let b = Tensor::rand_uniform(&[a.cols(), 4], -1.0, 1.0, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_close(lhs.data(), rhs.data(), 1e-3);
    }

    #[test]
    fn matmul_tn_nt_agree_with_naive(a in small_matrix(6), seed in 0u64..1000) {
        let mut rng = TensorRng::seed(seed);
        let b = Tensor::rand_uniform(&[a.rows(), 5], -1.0, 1.0, &mut rng);
        assert_close(a.matmul_tn(&b).data(), a.transpose().matmul(&b).data(), 1e-3);
        let c = Tensor::rand_uniform(&[7, a.cols()], -1.0, 1.0, &mut rng);
        assert_close(a.matmul_nt(&c).data(), a.matmul(&c.transpose()).data(), 1e-3);
    }

    #[test]
    fn softmax_is_probability_vector(v in vector(16)) {
        let s = v.softmax();
        prop_assert!(s.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
        prop_assert!((s.sum() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn softmax_shift_invariant(v in vector(12)) {
        let shifted = v.add_scalar(13.5);
        assert_close(v.softmax().data(), shifted.softmax().data(), 1e-4);
    }

    #[test]
    fn softmax_preserves_argmax(v in vector(12)) {
        prop_assert_eq!(v.argmax(), v.softmax().argmax());
    }

    #[test]
    fn gather_then_sum_matches_manual(m in small_matrix(6), pick in proptest::collection::vec(0usize..6, 1..8)) {
        let idx: Vec<usize> = pick.into_iter().map(|i| i % m.rows()).collect();
        let g = m.gather_rows(&idx);
        let mut manual = vec![0.0f32; m.cols()];
        for &i in &idx {
            for (acc, &x) in manual.iter_mut().zip(m.row(i)) {
                *acc += x;
            }
        }
        assert_close(g.sum_rows().data(), &manual, 1e-4);
    }

    #[test]
    fn scatter_gather_adjoint(m in small_matrix(5), pick in proptest::collection::vec(0usize..5, 1..6), seed in 0u64..100) {
        // <gather(M, idx), U> == <M, scatter(idx, U)>
        let idx: Vec<usize> = pick.into_iter().map(|i| i % m.rows()).collect();
        let mut rng = TensorRng::seed(seed);
        let u = Tensor::rand_uniform(&[idx.len(), m.cols()], -1.0, 1.0, &mut rng);
        let lhs = m.gather_rows(&idx).dot(&u);
        let mut scat = Tensor::zeros(&[m.rows(), m.cols()]);
        scat.scatter_add_rows(&idx, &u);
        let rhs = m.dot(&scat);
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }

    #[test]
    fn max_over_rows_dominates_every_row(m in small_matrix(7)) {
        let (vals, idx) = m.max_over_rows(0, m.rows());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                prop_assert!(vals.data()[c] >= m.at(r, c));
            }
        }
        for (c, &r) in idx.iter().enumerate() {
            prop_assert_eq!(m.at(r, c), vals.data()[c]);
        }
    }

    #[test]
    fn concat_cols_roundtrips_through_slices(m in small_matrix(6)) {
        let c = m.cols();
        if c >= 2 {
            let left = m.slice_cols(0, c / 2);
            let right = m.slice_cols(c / 2, c);
            let back = Tensor::concat_cols(&[&left, &right]);
            prop_assert_eq!(back.data(), m.data());
        }
    }

    #[test]
    fn norm_is_absolutely_homogeneous(v in vector(10), s in -5.0f32..5.0) {
        let lhs = v.scale(s).norm_l2();
        let rhs = s.abs() * v.norm_l2();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + rhs));
    }

    #[test]
    fn mean_rows_between_min_and_max(m in small_matrix(6)) {
        let mr = m.mean_rows();
        for c in 0..m.cols() {
            let col: Vec<f32> = (0..m.rows()).map(|r| m.at(r, c)).collect();
            let lo = col.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = col.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(mr.data()[c] >= lo - 1e-4 && mr.data()[c] <= hi + 1e-4);
        }
    }
}
