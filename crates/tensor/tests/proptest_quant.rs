//! Bit-identity of the int8 quantized kernels across SIMD backends and
//! thread counts.
//!
//! The quantized path's determinism story is stronger than the f32
//! kernels': the i8×i8→i32 inner product is *exact* integer arithmetic, so
//! every summation order yields the same `i32`, and the single shared f32
//! dequant epilogue then yields the same bits on every backend. These
//! properties pin that down empirically: random matrices and activations,
//! every backend (`IMRE_FORCE_SCALAR=1` in CI re-runs the whole file with
//! the scalar fallback pinned), at 1 and 4 pool threads.

use imre_tensor::pool::{self, ThreadPool};
use imre_tensor::quant::{self, QuantRowParams, QuantTensor};
use imre_tensor::simd::{self, Backend};
use imre_tensor::Tensor;
use proptest::prelude::*;

fn matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-8.0f32..8.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]))
    })
}

/// Quantizes `x`'s single row and runs `qmatvec` under the given backend.
fn qmatvec_under(
    be: Backend,
    w: &QuantTensor,
    qx: &[i8],
    p: QuantRowParams,
    bias: &[f32],
) -> Vec<u32> {
    simd::with_backend(be, || {
        let mut out = vec![0f32; w.rows()];
        quant::qmatvec_into(w, qx, p, Some(bias), &mut out);
        out.iter().map(|v| v.to_bits()).collect()
    })
}

fn gather_under(be: Backend, w: &QuantTensor, ids: &[usize]) -> Vec<u32> {
    simd::with_backend(be, || {
        let mut out = vec![0f32; ids.len() * w.cols()];
        quant::gather_dequant_into(w, ids, &mut out);
        out.iter().map(|v| v.to_bits()).collect()
    })
}

/// Runs `f` single-threaded and on a 4-worker pool; asserts identical bits.
fn at_both_thread_counts(mut f: impl FnMut() -> Vec<u32>) -> Vec<u32> {
    let t1 = pool::with_pool(&ThreadPool::new(1), &mut f);
    let t4 = pool::with_pool(&ThreadPool::new(4), &mut f);
    assert_eq!(t1, t4, "thread count changed the quantized bits");
    t1
}

proptest! {
    #[test]
    fn qmatvec_bit_identical_across_backends_and_threads(
        w in matrix(12, 140),
        xs in proptest::collection::vec(-8.0f32..8.0, 140),
    ) {
        let cols = w.shape()[1];
        let rows = w.shape()[0];
        let qw = QuantTensor::quantize(&w);
        let mut qx = vec![0i8; cols];
        let p = quant::quantize_row_into(&xs[..cols], &mut qx);
        let bias: Vec<f32> = (0..rows).map(|i| i as f32 * 0.017 - 0.1).collect();
        let scalar = at_both_thread_counts(|| qmatvec_under(Backend::Scalar, &qw, &qx, p, &bias));
        for be in [Backend::Avx2, Backend::Avx512] {
            let got = at_both_thread_counts(|| qmatvec_under(be, &qw, &qx, p, &bias));
            prop_assert_eq!(&scalar, &got, "{:?} diverged from scalar", be);
        }
    }

    #[test]
    fn gather_dequant_bit_identical_across_backends_and_threads(
        w in matrix(20, 70),
        picks in proptest::collection::vec(0usize..1000, 1..12),
    ) {
        let rows = w.shape()[0];
        let qw = QuantTensor::quantize(&w);
        let ids: Vec<usize> = picks.iter().map(|&p| p % rows).collect();
        let scalar = at_both_thread_counts(|| gather_under(Backend::Scalar, &qw, &ids));
        for be in [Backend::Avx2, Backend::Avx512] {
            let got = at_both_thread_counts(|| gather_under(be, &qw, &ids));
            prop_assert_eq!(&scalar, &got, "{:?} diverged from scalar", be);
        }
    }

    #[test]
    fn quantize_row_bit_identical_across_backends(
        xs in proptest::collection::vec(-50.0f32..50.0, 1..200),
    ) {
        let mut q_scalar = vec![0i8; xs.len()];
        let p_scalar = simd::with_backend(Backend::Scalar, || {
            quant::quantize_row_into(&xs, &mut q_scalar)
        });
        for be in [Backend::Avx2, Backend::Avx512] {
            let mut q = vec![0i8; xs.len()];
            let p = simd::with_backend(be, || quant::quantize_row_into(&xs, &mut q));
            prop_assert_eq!(&q_scalar, &q, "{:?} payload diverged from scalar", be);
            prop_assert_eq!(p_scalar.scale.to_bits(), p.scale.to_bits());
            prop_assert_eq!(p_scalar.zero_point, p.zero_point);
            prop_assert_eq!(p_scalar.sum, p.sum);
        }
    }

    #[test]
    fn quantize_row_round_trip_error_within_half_step(
        xs in proptest::collection::vec(-50.0f32..50.0, 1..200),
    ) {
        let mut q = vec![0i8; xs.len()];
        let p = quant::quantize_row_into(&xs, &mut q);
        prop_assert!(p.scale > 0.0 && p.scale.is_finite());
        let sum: i32 = q.iter().map(|&v| v as i32).sum();
        prop_assert_eq!(sum, p.sum, "stored row sum must match the payload");
        for (&x, &qi) in xs.iter().zip(&q) {
            let deq = (qi as f32 - p.zero_point as f32) * p.scale;
            prop_assert!(
                (x - deq).abs() <= p.scale * 0.5 + 1e-5,
                "{} -> {} (scale {})", x, deq, p.scale
            );
        }
    }

    #[test]
    fn row_sums_always_match_payload(w in matrix(10, 64)) {
        let q = QuantTensor::quantize(&w);
        for r in 0..q.rows() {
            let sum: i32 = q.data()[r * q.cols()..(r + 1) * q.cols()]
                .iter()
                .map(|&v| v as i32)
                .sum();
            prop_assert_eq!(sum, q.row_sums()[r]);
        }
    }
}
