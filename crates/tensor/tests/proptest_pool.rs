//! Property-based determinism tests for the thread-pool compute backend:
//! every kernel must produce **bit-identical** results on a 1-thread and an
//! N-thread pool. Shape ranges straddle the parallel grains, so cases land
//! on both the inline fast path and genuine multi-chunk dispatch (a
//! dedicated test pins that a super-grain matmul really dispatches, via the
//! counter), and comparisons use exact `==` on the raw f32 buffers — no
//! tolerance.

use imre_tensor::pool::{with_pool, ThreadPool};
use imre_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

/// Runs `f` once on a 1-thread pool and once on a 4-thread pool and returns
/// both results for exact comparison.
fn on_1_and_4<T>(f: impl Fn() -> T) -> (T, T) {
    let p1 = ThreadPool::new(1);
    let p4 = ThreadPool::new(4);
    (with_pool(&p1, &f), with_pool(&p4, &f))
}

fn mat(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = TensorRng::seed(seed);
    Tensor::rand_uniform(&[rows, cols], -2.0, 2.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // A·B, AᵀB, A·Bᵀ: identical bits at 1 and 4 threads. The ranges reach
    // past the ~8 Mi-MAC grain (k·n up to 65 536 MACs/row ⇒ chunks of
    // ~128 rows), so large draws split into several row chunks.
    #[test]
    fn matmul_family_bit_identical(m in 150usize..300, k in 128usize..256, n in 128usize..256, seed in 0u64..1000) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed ^ 0x9e37);
        let at = a.transpose();
        let bt = b.transpose();
        let ((c1, tn1, nt1), (c4, tn4, nt4)) = on_1_and_4(|| {
            (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt))
        });
        prop_assert_eq!(c1.data(), c4.data());
        prop_assert_eq!(tn1.data(), tn4.data());
        prop_assert_eq!(nt1.data(), nt4.data());
    }

    // Row-parallel softmax: identical bits per row at any thread count;
    // row counts straddle the 64 Ki-element grain.
    #[test]
    fn softmax_rows_bit_identical(rows in 600usize..1600, cols in 8usize..64, seed in 0u64..1000) {
        let x = mat(rows, cols, seed);
        let (s1, s4) = on_1_and_4(|| x.softmax_rows());
        prop_assert_eq!(s1.data(), s4.data());
    }

    // Chunk-parallel elementwise ops (including in-place accumulate);
    // lengths straddle the 128 Ki-element grain.
    #[test]
    fn elementwise_bit_identical(len in 100_000usize..300_000, seed in 0u64..1000) {
        let mut rng = TensorRng::seed(seed);
        let a = Tensor::rand_uniform(&[len], -3.0, 3.0, &mut rng);
        let b = Tensor::rand_uniform(&[len], -3.0, 3.0, &mut rng);
        let ((m1, t1, x1), (m4, t4, x4)) = on_1_and_4(|| {
            let mut acc = a.clone();
            acc.axpy(0.25, &b);
            (a.mul(&b), a.tanh(), acc)
        });
        prop_assert_eq!(m1.data(), m4.data());
        prop_assert_eq!(t1.data(), t4.data());
        prop_assert_eq!(x1.data(), x4.data());
    }

    // Embedding-bag gather: row-parallel copy is exact.
    #[test]
    fn gather_rows_bit_identical(rows in 16usize..64, cols in 64usize..256, n_idx in 200usize..600, seed in 0u64..1000) {
        let table = mat(rows, cols, seed);
        let mut rng = TensorRng::seed(seed ^ 0x51ce);
        let idx: Vec<usize> = (0..n_idx).map(|_| rng.below(rows)).collect();
        let (g1, g4) = on_1_and_4(|| table.gather_rows(&idx));
        prop_assert_eq!(g1.data(), g4.data());
    }
}

/// A super-grain matmul must genuinely dispatch to workers; this pins the
/// multi-chunk path the properties above rely on for their large draws
/// (512·512 MACs/row ⇒ 32-row chunks under the ~8 Mi-MAC grain).
#[test]
fn four_thread_pool_actually_dispatches() {
    let p4 = ThreadPool::new(4);
    let a = mat(64, 512, 7);
    let b = mat(512, 512, 8);
    with_pool(&p4, || {
        let _ = a.matmul(&b);
    });
    assert!(
        p4.dispatched_jobs() > 0,
        "a super-grain matmul must cross the parallel grain"
    );
}

/// Small ops on a big pool must take the inline path: no channel dispatch.
#[test]
fn small_ops_never_dispatch() {
    let p4 = ThreadPool::new(4);
    let a = mat(8, 8, 1);
    let b = mat(8, 8, 2);
    with_pool(&p4, || {
        let _ = a.matmul(&b);
        let _ = a.softmax_rows();
        let _ = a.add(&b);
    });
    assert_eq!(
        p4.dispatched_jobs(),
        0,
        "sub-grain ops must run inline even on a multi-thread pool"
    );
}

/// A worker panic (poisoned index) propagates to the caller with its
/// original message, and the pool keeps working afterwards.
#[test]
fn poisoned_worker_panic_propagates_through_kernels() {
    let p4 = ThreadPool::new(4);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        with_pool(&p4, || {
            p4.run(64, &|i| {
                assert!(i != 13, "poisoned worker task {i}");
            });
        });
    }))
    .expect_err("panic must reach the caller");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("poisoned worker task 13"),
        "payload kept: {msg}"
    );
    // Pool not poisoned: a full kernel still runs and matches 1-thread bits.
    let a = mat(80, 40, 3);
    let b = mat(40, 40, 4);
    let p1 = ThreadPool::new(1);
    let r4 = with_pool(&p4, || a.matmul(&b));
    let r1 = with_pool(&p1, || a.matmul(&b));
    assert_eq!(r1.data(), r4.data());
}
