//! Runtime SIMD dispatch behaviour: which backend is selected, that the
//! vector path is really taken on capable hardware (via the dispatch
//! counters), that `IMRE_FORCE_SCALAR=1` pins the scalar fallback, and that
//! backend choice never changes results. The CI `simd` step runs this suite
//! twice — once normally and once under `IMRE_FORCE_SCALAR=1` — so both
//! branches of the env check below are exercised.

use imre_tensor::pool::{with_pool, ThreadPool};
use imre_tensor::simd::{self, Backend};
use imre_tensor::{Tensor, TensorRng};

fn mat(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = TensorRng::seed(seed);
    Tensor::rand_uniform(&[rows, cols], -1.0, 1.0, &mut rng)
}

/// `backend()` honours the environment: `IMRE_FORCE_SCALAR=1` pins the
/// scalar fallback, otherwise (with no `IMRE_SIMD` override) detection
/// resolves to the best instruction set the CPU reports.
#[test]
fn backend_selection_honours_environment() {
    let forced_scalar = std::env::var("IMRE_FORCE_SCALAR").as_deref() == Ok("1");
    let overridden = std::env::var("IMRE_SIMD").is_ok();
    if forced_scalar && !overridden {
        assert_eq!(simd::backend(), Backend::Scalar);
    } else if !overridden {
        assert_eq!(simd::backend(), simd::hardware_backend());
    }
}

/// On SIMD-capable hardware the default dispatch must take the vector path
/// for a real kernel — counted, not inferred.
#[test]
fn vector_path_taken_on_capable_hardware() {
    if simd::backend() == Backend::Scalar {
        // Scalar-only hardware or a forced-scalar run: the scalar counter
        // must move instead.
        let before = simd::scalar_kernels();
        let _ = mat(16, 16, 1).matmul(&mat(16, 16, 2));
        assert!(simd::scalar_kernels() > before);
        return;
    }
    let before = simd::vector_kernels();
    let _ = mat(16, 16, 1).matmul(&mat(16, 16, 2));
    assert!(
        simd::vector_kernels() > before,
        "capable hardware must dispatch the vector kernel path"
    );
}

/// A scoped scalar override takes the scalar path (counted) and produces
/// exactly the bits of the default backend.
#[test]
fn forced_scalar_is_counted_and_bit_identical() {
    let a = mat(33, 47, 5);
    let b = mat(47, 61, 6);
    let default_run = a.matmul(&b);
    let before = simd::scalar_kernels();
    let scalar_run = simd::with_backend(Backend::Scalar, || a.matmul(&b));
    assert!(
        simd::scalar_kernels() > before,
        "scalar override must route through the scalar kernels"
    );
    assert_eq!(default_run.data(), scalar_run.data());
}

/// The backend resolved at kernel entry travels into pool workers: a scalar
/// override applies even when the work dispatches to a 4-thread pool.
#[test]
fn backend_override_propagates_to_pool_workers() {
    let a = mat(64, 512, 9);
    let b = mat(512, 512, 10);
    let p4 = ThreadPool::new(4);
    let (scalar_par, dispatched) = with_pool(&p4, || {
        let r = simd::with_backend(Backend::Scalar, || a.matmul(&b));
        (r, p4.dispatched_jobs())
    });
    assert!(dispatched > 0, "shape must be large enough to dispatch");
    let scalar_seq = simd::with_backend(Backend::Scalar, || a.matmul(&b));
    assert_eq!(scalar_par.data(), scalar_seq.data());
}

/// Grain sizing end-to-end: sub-grain shapes stay on the inline fast path
/// (no channel dispatch), super-grain shapes go to the workers.
#[test]
fn grain_sizing_pins_inline_and_dispatch_paths() {
    let p4 = ThreadPool::new(4);
    with_pool(&p4, || {
        let _ = mat(96, 48, 3).matmul(&mat(48, 48, 4));
        let _ = mat(64, 64, 5).softmax_rows();
        let _ = mat(100, 100, 7).add(&mat(100, 100, 8));
        assert_eq!(
            p4.dispatched_jobs(),
            0,
            "sub-grain kernels must run inline on a 4-thread pool"
        );
        let _ = mat(64, 512, 11).matmul(&mat(512, 512, 12));
        assert!(
            p4.dispatched_jobs() > 0,
            "super-grain matmul must dispatch to workers"
        );
    });
}
