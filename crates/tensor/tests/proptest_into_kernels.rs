//! Bit-identity of the destination-passing (`_into`) kernels against their
//! allocating counterparts.
//!
//! The zero-allocation hot path rests on one contract: writing into a
//! recycled pool buffer produces **exactly** the same bits as allocating a
//! fresh zeroed tensor. Every property here exercises an `_into` kernel with
//! a destination drawn from a deliberately dirtied [`BufferPool`] (the pool
//! re-zeroes on alloc) and with a plain poisoned buffer that the kernel must
//! fully overwrite, at one and several worker threads.
//!
//! The second block extends the contract across SIMD backends: every kernel
//! must produce the same bits under the scalar fallback and under each
//! vector backend, again at 1 and 4 threads with pool-poisoned
//! destinations. (On hardware without a given instruction set the request
//! clamps to the best available, so the comparison degrades gracefully.)

use imre_tensor::pool::{self, ThreadPool};
use imre_tensor::simd::{self, Backend};
use imre_tensor::{BufferPool, Tensor};
use proptest::prelude::*;

fn matrix(max_side: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_side, 1..=max_side).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]))
    })
}

fn vector(max_len: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_len).prop_flat_map(|n| {
        proptest::collection::vec(-10.0f32..10.0, n)
            .prop_map(move |data| Tensor::from_vec(data, &[n]))
    })
}

/// A pool whose free lists hold poisoned buffers covering `shapes`, so the
/// next `alloc` of any of those shapes is a *hit* on dirty memory.
fn dirty_pool(shapes: &[&[usize]]) -> BufferPool {
    let mut pool = BufferPool::new();
    for shape in shapes {
        let mut t = pool.alloc(shape);
        t.data_mut().iter_mut().for_each(|v| *v = f32::NAN);
        pool.recycle(t);
    }
    pool
}

/// Runs `f` single-threaded and with a 4-worker pool; asserts both runs
/// produce identical bits and returns the single-threaded result.
fn at_both_thread_counts(mut f: impl FnMut() -> Tensor) -> Tensor {
    let t1 = pool::with_pool(&ThreadPool::new(1), &mut f);
    let t4 = pool::with_pool(&ThreadPool::new(4), &mut f);
    assert_eq!(t1.data(), t4.data(), "thread count changed the bits");
    t1
}

proptest! {
    #[test]
    fn elementwise_into_bitwise_matches(m in matrix(8)) {
        let other = m.map(|x| (x * 0.7 + 1.3).sin() + 0.5);
        type BinOp = fn(&Tensor, &Tensor) -> Tensor;
        type BinInto = fn(&Tensor, &Tensor, &mut Tensor);
        let cases: [(BinOp, BinInto); 4] = [
            (Tensor::add, Tensor::add_into),
            (Tensor::sub, Tensor::sub_into),
            (Tensor::mul, Tensor::mul_into),
            (Tensor::div, Tensor::div_into),
        ];
        for (alloc_op, into_op) in cases {
            let expect = at_both_thread_counts(|| alloc_op(&m, &other));
            let mut pool = dirty_pool(&[m.shape()]);
            let got = at_both_thread_counts(|| {
                let mut out = pool.alloc(m.shape());
                into_op(&m, &other, &mut out);
                let r = out.clone();
                pool.recycle(out);
                r
            });
            prop_assert_eq!(expect.data(), got.data());
        }
    }

    #[test]
    fn unary_into_bitwise_matches(m in matrix(8), s in -4.0f32..4.0) {
        let mut pool = dirty_pool(&[m.shape()]);
        let mut check = |expect: Tensor, into_op: &dyn Fn(&Tensor, &mut Tensor)| {
            let mut out = pool.alloc(m.shape());
            into_op(&m, &mut out);
            assert_eq!(expect.data(), out.data());
            pool.recycle(out);
        };
        check(m.scale(s), &|t, out| t.scale_into(s, out));
        check(m.tanh(), &|t, out| t.tanh_into(out));
        check(m.sigmoid(), &|t, out| t.sigmoid_into(out));
        check(m.relu(), &|t, out| t.relu_into(out));
        check(m.map(|x| x * 2.0 - 1.0), &|t, out| t.map_into(out, |x| x * 2.0 - 1.0));
    }

    #[test]
    fn row_broadcast_into_bitwise_matches(m in matrix(8), seed in 0u64..1000) {
        let mut rng = imre_tensor::TensorRng::seed(seed);
        let bias = Tensor::rand_uniform(&[m.cols()], -2.0, 2.0, &mut rng);
        let expect_add = at_both_thread_counts(|| m.add_row_broadcast(&bias));
        let expect_mul = at_both_thread_counts(|| m.mul_row_broadcast(&bias));
        let mut pool = dirty_pool(&[m.shape(), m.shape()]);
        let got = at_both_thread_counts(|| {
            let mut a = pool.alloc(m.shape());
            m.add_row_broadcast_into(&bias, &mut a);
            let mut b = pool.alloc(m.shape());
            m.mul_row_broadcast_into(&bias, &mut b);
            let r = Tensor::concat(&[&a.flatten(), &b.flatten()]);
            pool.recycle(a);
            pool.recycle(b);
            r
        });
        prop_assert_eq!(&got.data()[..m.len()], expect_add.data());
        prop_assert_eq!(&got.data()[m.len()..], expect_mul.data());
    }

    #[test]
    fn reductions_into_bitwise_match(m in matrix(9)) {
        let mut pool = dirty_pool(&[&[m.cols()], &[m.cols()]]);
        let mut sums = pool.alloc(&[m.cols()]);
        m.sum_rows_into(&mut sums);
        let expect_sums = m.sum_rows();
        prop_assert_eq!(expect_sums.data(), sums.data());
        let mut means = pool.alloc(&[m.cols()]);
        m.mean_rows_into(&mut means);
        let expect_means = m.mean_rows();
        prop_assert_eq!(expect_means.data(), means.data());
    }

    #[test]
    fn max_over_rows_into_bitwise_matches(m in matrix(9), cut in 0usize..9) {
        let lo = cut % m.rows();
        let (vals, _) = m.max_over_rows(lo, m.rows());
        let mut out = vec![f32::NAN; m.cols()];
        m.max_over_rows_into(lo, m.rows(), &mut out);
        prop_assert_eq!(vals.data(), &out[..]);
    }

    #[test]
    fn softmax_into_bitwise_matches(v in vector(24), m in matrix(8)) {
        let mut pool = dirty_pool(&[v.shape(), m.shape()]);
        let mut sv = pool.alloc(v.shape());
        v.softmax_into(&mut sv);
        let expect_sm = v.softmax();
        prop_assert_eq!(expect_sm.data(), sv.data());
        let expect_rows = at_both_thread_counts(|| m.softmax_rows());
        let got_rows = at_both_thread_counts(|| {
            let mut out = pool.alloc(m.shape());
            m.softmax_rows_into(&mut out);
            let r = out.clone();
            pool.recycle(out);
            r
        });
        prop_assert_eq!(expect_rows.data(), got_rows.data());
    }

    #[test]
    fn gather_rows_into_bitwise_matches(m in matrix(7), pick in proptest::collection::vec(0usize..7, 1..10)) {
        let idx: Vec<usize> = pick.into_iter().map(|i| i % m.rows()).collect();
        let expect = at_both_thread_counts(|| m.gather_rows(&idx));
        let mut pool = dirty_pool(&[&[idx.len(), m.cols()]]);
        let got = at_both_thread_counts(|| {
            let mut out = pool.alloc(&[idx.len(), m.cols()]);
            m.gather_rows_into(&idx, &mut out);
            let r = out.clone();
            pool.recycle(out);
            r
        });
        prop_assert_eq!(expect.data(), got.data());
    }

    #[test]
    fn matvec_into_bitwise_matches(m in matrix(9), seed in 0u64..1000) {
        let mut rng = imre_tensor::TensorRng::seed(seed);
        let v = Tensor::rand_uniform(&[m.cols()], -3.0, 3.0, &mut rng);
        let expect = at_both_thread_counts(|| m.matvec(&v));
        let mut pool = dirty_pool(&[&[m.rows()]]);
        let got = at_both_thread_counts(|| {
            let mut out = pool.alloc(&[m.rows()]);
            m.matvec_into(&v, &mut out);
            let r = out.clone();
            pool.recycle(out);
            r
        });
        prop_assert_eq!(expect.data(), got.data());
    }

    #[test]
    fn matmul_into_pooled_dest_bitwise_matches(a in matrix(7), seed in 0u64..1000) {
        // matmul_into accumulates: the pool's always-zeroed contract is what
        // makes a recycled destination equivalent to a fresh Tensor::zeros.
        let mut rng = imre_tensor::TensorRng::seed(seed);
        let b = Tensor::rand_uniform(&[a.cols(), 5], -1.0, 1.0, &mut rng);
        let expect = at_both_thread_counts(|| a.matmul(&b));
        let mut pool = dirty_pool(&[&[a.rows(), 5]]);
        let got = at_both_thread_counts(|| {
            let mut out = pool.alloc(&[a.rows(), 5]);
            imre_tensor::matmul_into(a.data(), b.data(), out.data_mut(), a.rows(), a.cols(), 5);
            let r = out.clone();
            pool.recycle(out);
            r
        });
        prop_assert_eq!(expect.data(), got.data());
    }

    #[test]
    fn pooled_alloc_never_leaks_previous_contents(shape_a in 1usize..200, shape_b in 1usize..200) {
        // Whatever sizes hit the pool in whatever order, alloc is all-zero.
        let mut pool = BufferPool::new();
        for &n in &[shape_a, shape_b, shape_a] {
            let mut t = pool.alloc(&[n]);
            prop_assert!(t.data().iter().all(|&x| x == 0.0));
            t.data_mut().iter_mut().for_each(|v| *v = 3.25);
            pool.recycle(t);
        }
    }
}

// ----------------------------------------------------------------------
// SIMD vs scalar bit-identity
// ----------------------------------------------------------------------

/// Runs `f` under the scalar backend and under each vector backend, each at
/// 1 and 4 pool threads; asserts every combination produces identical bits
/// and returns the scalar result.
fn across_backends_and_threads(mut f: impl FnMut() -> Tensor) -> Tensor {
    let reference = simd::with_backend(Backend::Scalar, || at_both_thread_counts(&mut f));
    for be in [Backend::Avx2, Backend::Avx512] {
        let got = simd::with_backend(be, || at_both_thread_counts(&mut f));
        assert_eq!(
            reference.data(),
            got.data(),
            "backend {} changed the bits",
            be.name()
        );
    }
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Matmul family: `n` ranges past the 64-wide AVX-512 tile, the 48-wide
    // AVX2 tile, the 16/8-wide tails, and the scalar remainder; `matmul_into`
    // additionally accumulates into a pool-poisoned (re-zeroed) destination.
    #[test]
    fn matmul_family_bitwise_matches_across_backends(
        m in 1usize..12, k in 1usize..48, n in 1usize..140, seed in 0u64..1000
    ) {
        let mut rng = imre_tensor::TensorRng::seed(seed);
        let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
        let at = a.transpose();
        let bt = b.transpose();
        let _ = across_backends_and_threads(|| a.matmul(&b));
        let _ = across_backends_and_threads(|| at.matmul_tn(&b));
        let _ = across_backends_and_threads(|| a.matmul_nt(&bt));
        let _ = across_backends_and_threads(|| a.matvec(&bt.row_tensor(0)));
        let mut pool = dirty_pool(&[&[m, n]]);
        let _ = across_backends_and_threads(|| {
            let mut out = pool.alloc(&[m, n]);
            imre_tensor::matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
            let r = out.clone();
            pool.recycle(out);
            r
        });
    }

    // Elementwise kernels: lengths cross the 8-lane width and its tail.
    #[test]
    fn elementwise_bitwise_matches_across_backends(
        len in 1usize..80, s in -3.0f32..3.0, seed in 0u64..1000
    ) {
        let mut rng = imre_tensor::TensorRng::seed(seed);
        let a = Tensor::rand_uniform(&[len], -5.0, 5.0, &mut rng);
        let b = Tensor::rand_uniform(&[len], -5.0, 5.0, &mut rng);
        let _ = across_backends_and_threads(|| a.add(&b));
        let _ = across_backends_and_threads(|| a.sub(&b));
        let _ = across_backends_and_threads(|| a.mul(&b));
        let _ = across_backends_and_threads(|| a.div(&b));
        let _ = across_backends_and_threads(|| a.scale(s));
        let _ = across_backends_and_threads(|| {
            let mut acc = a.clone();
            acc.add_assign(&b);
            acc.axpy(s, &b);
            acc
        });
    }

    // Softmax rows and broadcasts: per-row reductions use the fixed 8-lane
    // structure; widths cross the lane width and its tail.
    #[test]
    fn rowwise_bitwise_matches_across_backends(
        rows in 1usize..10, cols in 1usize..40, seed in 0u64..1000
    ) {
        let mut rng = imre_tensor::TensorRng::seed(seed);
        let m = Tensor::rand_uniform(&[rows, cols], -4.0, 4.0, &mut rng);
        let bias = Tensor::rand_uniform(&[cols], -2.0, 2.0, &mut rng);
        let _ = across_backends_and_threads(|| m.softmax_rows());
        let _ = across_backends_and_threads(|| m.add_row_broadcast(&bias));
        let _ = across_backends_and_threads(|| m.mul_row_broadcast(&bias));
        let mut pool = dirty_pool(&[m.shape()]);
        let _ = across_backends_and_threads(|| {
            let mut out = pool.alloc(m.shape());
            m.softmax_rows_into(&mut out);
            let r = out.clone();
            pool.recycle(out);
            r
        });
    }
}
