//! The HNSW graph: deterministic construction and zero-allocation search.
//!
//! Hierarchical Navigable Small World (Malkov & Yashunin, 2016) with the
//! simple closest-M neighbor selection. Distances are squared Euclidean,
//! accumulated in a fixed loop order. All priority decisions operate on
//! packed `u64` keys — distance bits in the high half, node id in the low
//! half — which gives a total order with id tie-breaks for free (squared
//! distances are non-negative, so their IEEE-754 bit patterns sort like the
//! values themselves).

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Hard cap on a node's top layer; `u8`-sized and far above what the
/// geometric level distribution reaches for any realistic corpus.
pub(crate) const MAX_LEVEL: usize = 15;

/// Backing storage for the vector matrix: owned (built or stream-loaded
/// indices) or borrowed zero-copy from an external allocation — in practice
/// the 64-byte-aligned vectors block of a memory-mapped v3 bundle section.
/// The `_keep` handle (the mapping) outlives every borrow by construction.
pub(crate) enum VecStorage {
    Owned(Vec<f32>),
    Borrowed {
        ptr: *const f32,
        len: usize,
        _keep: Arc<dyn Any + Send + Sync>,
    },
}

// SAFETY: the borrowed variant is an immutable view of memory owned by the
// `Send + Sync` keepalive; nothing ever writes through `ptr`.
#[allow(unsafe_code)]
unsafe impl Send for VecStorage {}
#[allow(unsafe_code)]
unsafe impl Sync for VecStorage {}

impl VecStorage {
    #[inline]
    pub(crate) fn as_slice(&self) -> &[f32] {
        match self {
            VecStorage::Owned(v) => v,
            // SAFETY: constructor contract — `ptr..ptr+len` stays valid and
            // unmodified for as long as `_keep` is alive.
            #[allow(unsafe_code)]
            VecStorage::Borrowed { ptr, len, .. } => unsafe {
                std::slice::from_raw_parts(*ptr, *len)
            },
        }
    }

    fn is_borrowed(&self) -> bool {
        matches!(self, VecStorage::Borrowed { .. })
    }
}

impl fmt::Debug for VecStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VecStorage({}, {} floats)",
            if self.is_borrowed() {
                "borrowed"
            } else {
                "owned"
            },
            self.as_slice().len()
        )
    }
}

/// Construction and search parameters for [`AnnIndex`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HnswConfig {
    /// Max out-degree per node on layers ≥ 1 (layer 0 allows `2m`).
    pub m: usize,
    /// Beam width while inserting a node.
    pub ef_construction: usize,
    /// Default beam width at query time (raised to `k` when `k` is larger).
    pub ef_search: usize,
    /// Seed folded into every node's layer assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 12,
            ef_construction: 80,
            ef_search: 48,
            seed: 0,
        }
    }
}

impl HnswConfig {
    /// The default configuration with a caller-chosen seed (typically the
    /// training seed, extending the run's determinism contract to the index).
    pub fn with_seed(seed: u64) -> Self {
        HnswConfig {
            seed,
            ..HnswConfig::default()
        }
    }
}

/// Why an index could not be built (or deserialized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnError {
    /// The input arrays are inconsistent, empty, or contain non-finite
    /// values, or the configuration is unusable.
    BadInput(String),
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::BadInput(msg) => write!(f, "ann: {msg}"),
        }
    }
}

impl std::error::Error for AnnError {}

/// One search result: a training-bag id and its squared L2 distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index of the training bag in insertion order.
    pub id: u32,
    /// Squared Euclidean distance to the query.
    pub dist: f32,
}

/// Reusable per-caller search state; see the crate docs for the allocation
/// contract. One scratch serves any number of indices and queries, growing
/// its buffers to high-water capacity and never shrinking.
#[derive(Default)]
pub struct SearchScratch {
    /// Epoch-stamped visited marks, indexed by node id.
    visited: Vec<u32>,
    epoch: u32,
    /// Min-heap of packed keys: the expansion frontier.
    frontier: Vec<u64>,
    /// Min-heap of *inverted* packed keys: the bounded result beam, with
    /// the current-worst entry at the top.
    beam: Vec<u64>,
    /// Final neighbors, sorted ascending by `(dist, id)`.
    out: Vec<Neighbor>,
}

impl SearchScratch {
    /// An empty scratch; the first queries against an index warm it up.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// Starts a fresh visited epoch covering `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.visited.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.frontier.clear();
        self.beam.clear();
    }

    #[inline]
    fn visit(&mut self, id: u32) -> bool {
        let slot = &mut self.visited[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// A deterministic HNSW index over fixed-dimension `f32` vectors, each
/// carrying a relation label. See the crate docs for the determinism and
/// allocation contracts.
#[derive(Debug)]
pub struct AnnIndex {
    cfg: HnswConfig,
    dim: usize,
    /// Row-major `[n, dim]` vectors, insertion order (owned or mmap-borrowed).
    vectors: VecStorage,
    /// Relation label per vector.
    labels: Vec<u32>,
    /// Top layer per node.
    levels: Vec<u8>,
    /// `links[node][layer]` = out-neighbors, `layer ∈ 0..=levels[node]`.
    links: Vec<Vec<Vec<u32>>>,
    /// Entry point: the highest-layer node (lowest id on ties).
    entry: u32,
    /// Highest populated layer.
    max_level: u8,
}

/// `key = distance_bits << 32 | id`: totally ordered, ties break by id.
#[inline]
fn pack(dist: f32, id: u32) -> u64 {
    // Guard against NaN sneaking in through a degenerate query: NaN bits
    // would scramble the order, +inf keeps it total.
    let d = if dist.is_nan() { f32::INFINITY } else { dist };
    ((d.to_bits() as u64) << 32) | id as u64
}

#[inline]
fn key_id(key: u64) -> u32 {
    key as u32
}

#[inline]
fn key_dist(key: u64) -> f32 {
    f32::from_bits((key >> 32) as u32)
}

/// Min-heap push on a plain `Vec<u64>`.
fn heap_push(h: &mut Vec<u64>, v: u64) {
    h.push(v);
    let mut i = h.len() - 1;
    while i > 0 {
        let p = (i - 1) / 2;
        if h[p] <= h[i] {
            break;
        }
        h.swap(p, i);
        i = p;
    }
}

/// Min-heap pop on a plain `Vec<u64>`.
fn heap_pop(h: &mut Vec<u64>) -> Option<u64> {
    let last = h.pop()?;
    if h.is_empty() {
        return Some(last);
    }
    let top = std::mem::replace(&mut h[0], last);
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut s = i;
        if l < h.len() && h[l] < h[s] {
            s = l;
        }
        if r < h.len() && h[r] < h[s] {
            s = r;
        }
        if s == i {
            return Some(top);
        }
        h.swap(i, s);
        i = s;
    }
}

/// SplitMix64 finalizer — the same mix `imre-tensor`'s RNG family builds on.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Geometric layer assignment from `(seed, id)` alone.
fn level_for(seed: u64, id: u64, ml: f64) -> u8 {
    let bits = splitmix64(seed ^ splitmix64(id ^ 0xA076_1D64_78BD_642F));
    // 53 mantissa-ish bits to a uniform in (0, 1): never exactly 0, so the
    // log below is always finite.
    let u = ((bits >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0);
    ((-u.ln() * ml) as usize).min(MAX_LEVEL) as u8
}

/// Squared Euclidean distance, fixed accumulation order.
#[inline]
fn l2sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Exact brute-force kNN over row-major `[n, dim]` vectors — the reference
/// the property tests hold [`AnnIndex::search`] against, and a sanity tool
/// for offline analysis. Returns up to `k` neighbors sorted ascending by
/// `(dist, id)`.
pub fn exact_knn(dim: usize, vectors: &[f32], query: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(dim > 0 && vectors.len().is_multiple_of(dim));
    let mut keys: Vec<u64> = vectors
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, row)| pack(l2sq(query, row), i as u32))
        .collect();
    keys.sort_unstable();
    keys.truncate(k);
    keys.into_iter()
        .map(|key| Neighbor {
            id: key_id(key),
            dist: key_dist(key),
        })
        .collect()
}

/// Borrowed view of every [`AnnIndex`] field, handed to the serializer.
pub(crate) struct RawParts<'a> {
    pub cfg: &'a HnswConfig,
    pub dim: usize,
    pub vectors: &'a [f32],
    pub labels: &'a [u32],
    pub levels: &'a [u8],
    pub links: &'a [Vec<Vec<u32>>],
    pub entry: u32,
    pub max_level: u8,
}

/// Owned field set assembled by the deserializer; the caller runs
/// structural validation on the resulting index.
pub(crate) struct OwnedParts {
    pub cfg: HnswConfig,
    pub dim: usize,
    pub vectors: VecStorage,
    pub labels: Vec<u32>,
    pub levels: Vec<u8>,
    pub links: Vec<Vec<Vec<u32>>>,
    pub entry: u32,
    pub max_level: u8,
}

impl AnnIndex {
    /// Builds an index over `n = labels.len()` vectors (`vectors` is the
    /// row-major `[n, dim]` matrix). Construction is single-threaded and
    /// deterministic — see the crate docs.
    ///
    /// Fails on empty input, mismatched lengths, non-finite vector
    /// components (a diverged model must not produce a poisoned index), or
    /// a degenerate configuration.
    pub fn build(
        dim: usize,
        vectors: Vec<f32>,
        labels: Vec<u32>,
        cfg: HnswConfig,
    ) -> Result<AnnIndex, AnnError> {
        if dim == 0 {
            return Err(AnnError::BadInput("dim must be positive".into()));
        }
        if cfg.m < 2 || cfg.ef_construction == 0 {
            return Err(AnnError::BadInput(format!(
                "degenerate config: m={} ef_construction={}",
                cfg.m, cfg.ef_construction
            )));
        }
        let n = labels.len();
        if n == 0 {
            return Err(AnnError::BadInput("no vectors to index".into()));
        }
        if n > u32::MAX as usize / 2 {
            return Err(AnnError::BadInput(format!("{n} vectors exceed id space")));
        }
        if vectors.len() != n * dim {
            return Err(AnnError::BadInput(format!(
                "vector buffer holds {} floats, expected {n} x {dim}",
                vectors.len()
            )));
        }
        if let Some(pos) = vectors.iter().position(|v| !v.is_finite()) {
            return Err(AnnError::BadInput(format!(
                "non-finite component in vector {}",
                pos / dim
            )));
        }

        let ml = 1.0 / (cfg.m as f64).ln();
        let levels: Vec<u8> = (0..n).map(|i| level_for(cfg.seed, i as u64, ml)).collect();
        let links = levels
            .iter()
            .map(|&l| vec![Vec::new(); l as usize + 1])
            .collect();
        let mut index = AnnIndex {
            cfg,
            dim,
            vectors: VecStorage::Owned(vectors),
            labels,
            levels,
            links,
            entry: 0,
            max_level: 0,
        };
        index.max_level = index.levels[0];
        let mut scratch = SearchScratch::new();
        for id in 1..n as u32 {
            index.insert(id, &mut scratch);
        }
        Ok(index)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the index holds no vectors (never true for a built index).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The build configuration (seed included).
    pub fn config(&self) -> &HnswConfig {
        &self.cfg
    }

    /// Relation label of every indexed vector, insertion order.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The indexed vector for `id`.
    pub fn vector(&self, id: u32) -> &[f32] {
        let d = self.dim;
        &self.vectors.as_slice()[id as usize * d..(id as usize + 1) * d]
    }

    /// Whether the vector matrix borrows from an external mapping rather
    /// than owning its storage.
    pub fn is_borrowed(&self) -> bool {
        self.vectors.is_borrowed()
    }

    pub(crate) fn raw_parts(&self) -> RawParts<'_> {
        RawParts {
            cfg: &self.cfg,
            dim: self.dim,
            vectors: self.vectors.as_slice(),
            labels: &self.labels,
            levels: &self.levels,
            links: &self.links,
            entry: self.entry,
            max_level: self.max_level,
        }
    }

    pub(crate) fn from_raw_parts(parts: OwnedParts) -> AnnIndex {
        AnnIndex {
            cfg: parts.cfg,
            dim: parts.dim,
            vectors: parts.vectors,
            labels: parts.labels,
            levels: parts.levels,
            links: parts.links,
            entry: parts.entry,
            max_level: parts.max_level,
        }
    }

    /// Max out-degree on `layer`.
    fn m_max(&self, layer: usize) -> usize {
        if layer == 0 {
            2 * self.cfg.m
        } else {
            self.cfg.m
        }
    }

    /// Inserts node `id`; every node `< id` is already linked in.
    fn insert(&mut self, id: u32, scratch: &mut SearchScratch) {
        let q: Vec<f32> = self.vector(id).to_vec();
        let top = self.levels[id as usize];
        let mut ep = pack(l2sq(&q, self.vector(self.entry)), self.entry);

        // Greedy descent through the layers above the new node's top.
        let mut layer = self.max_level as usize;
        while layer > top as usize {
            self.search_layer(&q, ep, 1, layer, scratch);
            ep = pack(scratch.out[0].dist, scratch.out[0].id);
            layer -= 1;
        }

        // Link layers from min(top, max_level) down to 0.
        let mut layer = (top.min(self.max_level)) as usize;
        loop {
            self.search_layer(&q, ep, self.cfg.ef_construction, layer, scratch);
            ep = pack(scratch.out[0].dist, scratch.out[0].id);
            let chosen: Vec<u32> = scratch
                .out
                .iter()
                .take(self.cfg.m)
                .map(|nb| nb.id)
                .collect();
            for &nb in &chosen {
                self.links[nb as usize][layer].push(id);
                if self.links[nb as usize][layer].len() > self.m_max(layer) {
                    self.shrink(nb, layer);
                }
            }
            self.links[id as usize][layer] = chosen;
            if layer == 0 {
                break;
            }
            layer -= 1;
        }

        if top > self.max_level {
            self.max_level = top;
            self.entry = id;
        }
    }

    /// Prunes `node`'s `layer` list back to the `m_max` closest neighbors,
    /// ties broken by id.
    fn shrink(&mut self, node: u32, layer: usize) {
        let m_max = self.m_max(layer);
        let base = node as usize * self.dim;
        let vs = self.vectors.as_slice();
        let mut keys: Vec<u64> = self.links[node as usize][layer]
            .iter()
            .map(|&nb| {
                let d = l2sq(
                    &vs[base..base + self.dim],
                    &vs[nb as usize * self.dim..(nb as usize + 1) * self.dim],
                );
                pack(d, nb)
            })
            .collect();
        keys.sort_unstable();
        keys.truncate(m_max);
        let list = &mut self.links[node as usize][layer];
        list.clear();
        list.extend(keys.into_iter().map(key_id));
    }

    /// Best-first beam search on one layer from entry key `ep`; leaves up
    /// to `ef` neighbors in `scratch.out`, sorted ascending by `(dist, id)`.
    fn search_layer(
        &self,
        q: &[f32],
        ep: u64,
        ef: usize,
        layer: usize,
        scratch: &mut SearchScratch,
    ) {
        scratch.begin(self.len());
        scratch.visit(key_id(ep));
        heap_push(&mut scratch.frontier, ep);
        heap_push(&mut scratch.beam, !ep);

        while let Some(cand) = heap_pop(&mut scratch.frontier) {
            let worst = !scratch.beam[0];
            if cand > worst && scratch.beam.len() >= ef {
                break;
            }
            for &nb in &self.links[key_id(cand) as usize][layer] {
                if !scratch.visit(nb) {
                    continue;
                }
                let key = pack(l2sq(q, self.vector(nb)), nb);
                let worst = !scratch.beam[0];
                if scratch.beam.len() < ef || key < worst {
                    heap_push(&mut scratch.frontier, key);
                    heap_push(&mut scratch.beam, !key);
                    if scratch.beam.len() > ef {
                        heap_pop(&mut scratch.beam);
                    }
                }
            }
        }

        scratch.out.clear();
        while let Some(inv) = heap_pop(&mut scratch.beam) {
            let key = !inv;
            scratch.out.push(Neighbor {
                id: key_id(key),
                dist: key_dist(key),
            });
        }
        // The beam pops worst-first; reverse to ascending (dist, id).
        scratch.out.reverse();
    }

    /// Finds (up to) the `k` nearest indexed vectors to `query`, sorted
    /// ascending by `(dist, id)`. Deterministic, and allocation-free once
    /// `scratch` is warm. `k == 0` returns an empty slice.
    ///
    /// # Panics
    /// If `query.len() != self.dim()`.
    pub fn search<'s>(
        &self,
        query: &[f32],
        k: usize,
        scratch: &'s mut SearchScratch,
    ) -> &'s [Neighbor] {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 {
            scratch.out.clear();
            return &scratch.out;
        }
        let mut ep = pack(l2sq(query, self.vector(self.entry)), self.entry);
        for layer in (1..=self.max_level as usize).rev() {
            self.search_layer(query, ep, 1, layer, scratch);
            ep = pack(scratch.out[0].dist, scratch.out[0].id);
        }
        let ef = self.cfg.ef_search.max(k);
        self.search_layer(query, ep, ef, 0, scratch);
        scratch.out.truncate(k);
        &scratch.out
    }

    /// Converts a neighbor slice into a label distribution: uniform `1/K`
    /// mass per neighbor, accumulated onto each neighbor's label. `out`
    /// must span the label space (`num_relations`); it is zeroed first.
    ///
    /// # Panics
    /// If a stored label falls outside `out` (bundle validation rejects
    /// such an index before it can serve).
    pub fn label_votes_into(&self, neighbors: &[Neighbor], out: &mut [f32]) {
        out.fill(0.0);
        if neighbors.is_empty() {
            return;
        }
        let w = 1.0 / neighbors.len() as f32;
        for nb in neighbors {
            out[self.labels[nb.id as usize] as usize] += w;
        }
    }

    /// Structural invariants, also enforced on deserialization: entry and
    /// every link target in range, per-node layer lists matching the
    /// declared levels, `max_level` consistent.
    pub(crate) fn validate_structure(&self) -> Result<(), AnnError> {
        let n = self.len();
        if self.vectors.as_slice().len() != n * self.dim
            || self.levels.len() != n
            || self.links.len() != n
        {
            return Err(AnnError::BadInput("array lengths disagree".into()));
        }
        if (self.entry as usize) >= n {
            return Err(AnnError::BadInput("entry point out of range".into()));
        }
        let observed_max = self.levels.iter().copied().max().unwrap_or(0);
        if observed_max != self.max_level || self.levels[self.entry as usize] != self.max_level {
            return Err(AnnError::BadInput("max level inconsistent".into()));
        }
        for (id, layers) in self.links.iter().enumerate() {
            if layers.len() != self.levels[id] as usize + 1 {
                return Err(AnnError::BadInput(format!(
                    "node {id} declares level {} but has {} layers",
                    self.levels[id],
                    layers.len()
                )));
            }
            for (layer, list) in layers.iter().enumerate() {
                if list.len() > self.m_max(layer) {
                    return Err(AnnError::BadInput(format!(
                        "node {id} layer {layer} overflows m_max"
                    )));
                }
                for &nb in list {
                    if nb as usize >= n || nb as usize == id {
                        return Err(AnnError::BadInput(format!(
                            "node {id} layer {layer} links to invalid node {nb}"
                        )));
                    }
                    if self.levels[nb as usize] < layer as u8 {
                        return Err(AnnError::BadInput(format!(
                            "node {id} layer {layer} links to node {nb} below that layer"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of points on a line: distances are unambiguous.
    fn line_index(n: usize, cfg: HnswConfig) -> AnnIndex {
        let vectors: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        AnnIndex::build(1, vectors, labels, cfg).expect("build")
    }

    #[test]
    fn build_rejects_bad_input() {
        let cfg = HnswConfig::default();
        assert!(AnnIndex::build(0, vec![], vec![], cfg).is_err());
        assert!(AnnIndex::build(2, vec![1.0], vec![0], cfg).is_err());
        assert!(AnnIndex::build(1, vec![], vec![], cfg).is_err());
        assert!(AnnIndex::build(1, vec![f32::NAN], vec![0], cfg).is_err());
        let degenerate = HnswConfig {
            m: 1,
            ..HnswConfig::default()
        };
        assert!(AnnIndex::build(1, vec![0.0], vec![0], degenerate).is_err());
    }

    #[test]
    fn search_finds_exact_neighbors_on_a_line() {
        let index = line_index(50, HnswConfig::with_seed(7));
        let mut scratch = SearchScratch::new();
        let got = index.search(&[20.2], 4, &mut scratch);
        let ids: Vec<u32> = got.iter().map(|nb| nb.id).collect();
        assert_eq!(ids, vec![20, 21, 19, 22]);
        assert!(got
            .windows(2)
            .all(|w| (w[0].dist, w[0].id) <= (w[1].dist, w[1].id)));
    }

    #[test]
    fn search_matches_brute_force_on_line() {
        let n = 64;
        let index = line_index(n, HnswConfig::with_seed(3));
        let vectors: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut scratch = SearchScratch::new();
        for q in [0.0f32, 13.6, 31.5, 63.0] {
            let got = index.search(&[q], 5, &mut scratch).to_vec();
            let want = exact_knn(1, &vectors, &[q], 5);
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn single_vector_index_works() {
        let index = AnnIndex::build(2, vec![1.0, 2.0], vec![4], HnswConfig::default()).unwrap();
        let mut scratch = SearchScratch::new();
        let got = index.search(&[0.0, 0.0], 3, &mut scratch);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 0);
        let mut votes = vec![0.0f32; 5];
        let got = got.to_vec();
        index.label_votes_into(&got, &mut votes);
        assert_eq!(votes[4], 1.0);
    }

    #[test]
    fn k_zero_returns_empty() {
        let index = line_index(10, HnswConfig::default());
        let mut scratch = SearchScratch::new();
        assert!(index.search(&[3.0], 0, &mut scratch).is_empty());
    }

    #[test]
    fn label_votes_are_uniform_over_neighbors() {
        let index = line_index(30, HnswConfig::default());
        let mut scratch = SearchScratch::new();
        let neighbors = index.search(&[9.0], 4, &mut scratch).to_vec();
        let mut votes = vec![0.0f32; 3];
        index.label_votes_into(&neighbors, &mut votes);
        let total: f32 = votes.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(votes.iter().all(|&v| (v * 4.0).fract().abs() < 1e-6));
    }

    #[test]
    fn repeated_searches_reuse_scratch_without_growth() {
        let index = line_index(200, HnswConfig::default());
        let mut scratch = SearchScratch::new();
        for q in 0..50 {
            index.search(&[q as f32 * 3.7], 8, &mut scratch);
        }
        let caps = (
            scratch.visited.capacity(),
            scratch.frontier.capacity(),
            scratch.beam.capacity(),
            scratch.out.capacity(),
        );
        for q in 0..200 {
            index.search(&[q as f32 * 1.3], 8, &mut scratch);
        }
        assert_eq!(
            caps,
            (
                scratch.visited.capacity(),
                scratch.frontier.capacity(),
                scratch.beam.capacity(),
                scratch.out.capacity(),
            ),
            "scratch buffers grew after warm-up"
        );
    }

    #[test]
    fn structure_validates_after_build() {
        let index = line_index(100, HnswConfig::with_seed(11));
        index.validate_structure().expect("built index is valid");
    }

    #[test]
    fn heap_orders_keys_totally() {
        let mut h = Vec::new();
        for v in [5u64, 1, 9, 1, 3, 7, 2] {
            heap_push(&mut h, v);
        }
        let mut drained = Vec::new();
        while let Some(v) = heap_pop(&mut h) {
            drained.push(v);
        }
        assert_eq!(drained, vec![1, 1, 2, 3, 5, 7, 9]);
    }
}
