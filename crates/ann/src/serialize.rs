//! The `IMRA` wire format: the ANN section appended to `.imrb` bundles.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic     "IMRA"
//! version   u32   (currently 1)
//! body_len  u64
//! body      body_len bytes:
//!   seed u64 · m u32 · ef_construction u32 · ef_search u32
//!   dim u32 · n u32 · entry u32 · max_level u32
//!   labels   n × u32
//!   levels   n × u8
//!   vectors  n·dim × f32
//!   links    per node, per layer 0..=level: count u32, count × u32
//! checksum  u64   FNV-1a over body
//! ```
//!
//! The body is length-prefixed and checksummed so a corrupt or truncated
//! section surfaces as a typed `io::Error` (kind `InvalidData`) before any
//! structural parsing happens — never a panic, and never a silently wrong
//! index. After the checksum passes, the parsed graph is still run through
//! the same structural validation the builder guarantees.

use crate::hnsw::{AnnIndex, HnswConfig, VecStorage, MAX_LEVEL};
use std::any::Any;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Section magic, distinct from the bundle's `IMRB`.
pub const ANN_MAGIC: &[u8; 4] = b"IMRA";

/// Current section format version.
pub const ANN_VERSION: u32 = 1;

/// Version tag of the 64-byte-aligned layout used inside v3 bundle
/// sections ([`AnnIndex::write_aligned`]). Distinct from [`ANN_VERSION`]
/// so a classic stream reader can never misparse an aligned section.
pub const ANN_ALIGNED_VERSION: u32 = 2;

/// Alignment of the vectors block inside an aligned section, relative to
/// the section start (which the bundle layer places at a 64-byte-aligned
/// file offset — and mappings are page-aligned, so file alignment carries
/// over to memory).
pub const ANN_SECTION_ALIGN: usize = 64;

/// Sections larger than this are rejected as corrupt before allocation
/// (1 GiB of index for a research corpus means the length field is garbage).
const MAX_BODY: u64 = 1 << 30;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("ANN section body truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl AnnIndex {
    /// Serializes the index as one self-delimiting `IMRA` section.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let body = self.body_bytes();
        w.write_all(ANN_MAGIC)?;
        w.write_all(&ANN_VERSION.to_le_bytes())?;
        w.write_all(&(body.len() as u64).to_le_bytes())?;
        w.write_all(&body)?;
        w.write_all(&fnv1a(&body).to_le_bytes())?;
        Ok(())
    }

    /// Exact on-disk size of the serialized section in bytes.
    pub fn serialized_len(&self) -> usize {
        // magic + version + body_len + body + checksum
        4 + 4 + 8 + self.body_len() + 8
    }

    fn body_len(&self) -> usize {
        let p = self.raw_parts();
        let n = p.labels.len();
        let link_words: usize = p
            .links
            .iter()
            .flat_map(|layers| layers.iter().map(|l| 1 + l.len()))
            .sum();
        8 + 4 * 7 + 4 * n + n + 4 * n * p.dim + 4 * link_words
    }

    fn body_bytes(&self) -> Vec<u8> {
        let p = self.raw_parts();
        let mut b = Vec::with_capacity(self.body_len());
        b.extend_from_slice(&p.cfg.seed.to_le_bytes());
        for v in [
            p.cfg.m as u32,
            p.cfg.ef_construction as u32,
            p.cfg.ef_search as u32,
            p.dim as u32,
            p.labels.len() as u32,
            p.entry,
            p.max_level as u32,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        for &l in p.labels {
            b.extend_from_slice(&l.to_le_bytes());
        }
        b.extend_from_slice(p.levels);
        for &v in p.vectors {
            b.extend_from_slice(&v.to_le_bytes());
        }
        for layers in p.links {
            for list in layers {
                b.extend_from_slice(&(list.len() as u32).to_le_bytes());
                for &nb in list {
                    b.extend_from_slice(&nb.to_le_bytes());
                }
            }
        }
        b
    }

    /// Reads one `IMRA` section. Corruption of any kind — bad magic,
    /// unknown version, wrong length, checksum mismatch, truncated body,
    /// or a structurally invalid graph — comes back as `InvalidData`.
    pub fn read_from(r: &mut impl Read) -> io::Result<AnnIndex> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != ANN_MAGIC {
            return Err(bad("bad ANN section magic (expected IMRA)"));
        }
        let mut word = [0u8; 4];
        r.read_exact(&mut word)?;
        let version = u32::from_le_bytes(word);
        if version != ANN_VERSION {
            return Err(bad(format!("unsupported ANN section version {version}")));
        }
        let mut len8 = [0u8; 8];
        r.read_exact(&mut len8)?;
        let body_len = u64::from_le_bytes(len8);
        if body_len > MAX_BODY {
            return Err(bad(format!("ANN section claims {body_len} bytes")));
        }
        let mut body = vec![0u8; body_len as usize];
        r.read_exact(&mut body)
            .map_err(|_| bad("ANN section body truncated"))?;
        r.read_exact(&mut len8)
            .map_err(|_| bad("ANN section checksum missing"))?;
        if u64::from_le_bytes(len8) != fnv1a(&body) {
            return Err(bad("ANN section checksum mismatch"));
        }
        Self::parse_body(&body)
    }

    fn parse_body(body: &[u8]) -> io::Result<AnnIndex> {
        let mut c = Cursor { buf: body, pos: 0 };
        let seed = c.u64()?;
        let m = c.u32()? as usize;
        let ef_construction = c.u32()? as usize;
        let ef_search = c.u32()? as usize;
        let dim = c.u32()? as usize;
        let n = c.u32()? as usize;
        let entry = c.u32()?;
        let max_level = c.u32()?;
        if dim == 0 || n == 0 || m < 2 {
            return Err(bad("ANN section header degenerate"));
        }
        if max_level as usize > MAX_LEVEL {
            return Err(bad("ANN section max level out of range"));
        }
        // The fixed-size arrays alone must fit the remaining body. `n` and
        // `dim` are attacker-controlled (each up to u32::MAX), so the size
        // is computed with checked arithmetic — `4 * n * dim` can exceed
        // usize, and an overflow panic in a debug build would break this
        // module's never-panic contract on corrupt-but-checksummed input.
        let fixed = n
            .checked_mul(4)
            .and_then(|labels| labels.checked_add(n))
            .and_then(|head| {
                n.checked_mul(dim)
                    .and_then(|elems| elems.checked_mul(4))
                    .and_then(|vectors| head.checked_add(vectors))
            })
            .ok_or_else(|| bad("ANN section header sizes overflow"))?;
        if body.len() - c.pos < fixed {
            return Err(bad("ANN section body shorter than its header claims"));
        }
        let labels: Vec<u32> = c
            .take(4 * n)?
            .chunks_exact(4)
            .map(|w| u32::from_le_bytes(w.try_into().unwrap()))
            .collect();
        let levels: Vec<u8> = c.take(n)?.to_vec();
        let vectors: Vec<f32> = c
            .take(4 * n * dim)?
            .chunks_exact(4)
            .map(|w| f32::from_le_bytes(w.try_into().unwrap()))
            .collect();
        let mut links = Vec::with_capacity(n);
        for &level in &levels {
            let mut layers = Vec::with_capacity(level as usize + 1);
            for _ in 0..=level {
                let count = c.u32()? as usize;
                if count > n {
                    return Err(bad("ANN section neighbor count exceeds node count"));
                }
                let list: Vec<u32> = c
                    .take(4 * count)?
                    .chunks_exact(4)
                    .map(|w| u32::from_le_bytes(w.try_into().unwrap()))
                    .collect();
                layers.push(list);
            }
            links.push(layers);
        }
        if c.pos != body.len() {
            return Err(bad("ANN section has trailing bytes"));
        }
        let cfg = HnswConfig {
            m,
            ef_construction: ef_construction.max(1),
            ef_search: ef_search.max(1),
            seed,
        };
        let index = AnnIndex::from_raw_parts(crate::hnsw::OwnedParts {
            cfg,
            dim,
            vectors: VecStorage::Owned(vectors),
            labels,
            levels,
            links,
            entry,
            max_level: max_level as u8,
        });
        index.validate_structure().map_err(|e| bad(e.to_string()))?;
        Ok(index)
    }

    /// Serializes the index in the **aligned** layout used by v3 bundle
    /// sections: the fixed header and small arrays first, then zero padding
    /// so the f32 vectors block starts at a multiple of
    /// [`ANN_SECTION_ALIGN`] *relative to the section start*, then the link
    /// lists. No trailing checksum — the v3 section table checksums every
    /// section as a whole.
    ///
    /// ```text
    /// magic "IMRA" · version u32 (=2)
    /// seed u64 · m u32 · ef_construction u32 · ef_search u32
    /// dim u32 · n u32 · entry u32 · max_level u32
    /// labels n × u32 · levels n × u8
    /// zero padding to 64-alignment
    /// vectors n·dim × f32          ← zero-copy borrowable
    /// links   per node, per layer 0..=level: count u32, count × u32
    /// ```
    pub fn write_aligned(&self) -> Vec<u8> {
        let p = self.raw_parts();
        let n = p.labels.len();
        let mut b = Vec::with_capacity(64 + 5 * n + 4 * n * p.dim);
        b.extend_from_slice(ANN_MAGIC);
        b.extend_from_slice(&ANN_ALIGNED_VERSION.to_le_bytes());
        b.extend_from_slice(&p.cfg.seed.to_le_bytes());
        for v in [
            p.cfg.m as u32,
            p.cfg.ef_construction as u32,
            p.cfg.ef_search as u32,
            p.dim as u32,
            n as u32,
            p.entry,
            p.max_level as u32,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        for &l in p.labels {
            b.extend_from_slice(&l.to_le_bytes());
        }
        b.extend_from_slice(p.levels);
        let pad = b.len().next_multiple_of(ANN_SECTION_ALIGN) - b.len();
        b.resize(b.len() + pad, 0);
        for &v in p.vectors {
            b.extend_from_slice(&v.to_le_bytes());
        }
        for layers in p.links {
            for list in layers {
                b.extend_from_slice(&(list.len() as u32).to_le_bytes());
                for &nb in list {
                    b.extend_from_slice(&nb.to_le_bytes());
                }
            }
        }
        b
    }

    /// Parses an aligned section written by [`AnnIndex::write_aligned`].
    ///
    /// With `keep = Some(owner)` and a suitably aligned vectors block (the
    /// mmap case), the vector matrix is **borrowed zero-copy** from
    /// `bytes`, kept alive by `owner`; the caller guarantees `bytes`
    /// remains valid and unmodified for `owner`'s lifetime. Otherwise (or
    /// on a big-endian target) the vectors are copied. Small arrays and
    /// link lists are always copied. Corruption of any kind surfaces as
    /// `InvalidData` — callers are expected to have verified the section
    /// checksum already, so this guards structure, not bit rot.
    pub fn read_aligned(
        bytes: &[u8],
        keep: Option<Arc<dyn Any + Send + Sync>>,
    ) -> io::Result<AnnIndex> {
        let mut c = Cursor { buf: bytes, pos: 0 };
        if c.take(4)? != ANN_MAGIC {
            return Err(bad("bad ANN section magic (expected IMRA)"));
        }
        let version = c.u32()?;
        if version != ANN_ALIGNED_VERSION {
            return Err(bad(format!("unsupported aligned ANN version {version}")));
        }
        let seed = c.u64()?;
        let m = c.u32()? as usize;
        let ef_construction = c.u32()? as usize;
        let ef_search = c.u32()? as usize;
        let dim = c.u32()? as usize;
        let n = c.u32()? as usize;
        let entry = c.u32()?;
        let max_level = c.u32()?;
        if dim == 0 || n == 0 || m < 2 {
            return Err(bad("ANN section header degenerate"));
        }
        if max_level as usize > MAX_LEVEL {
            return Err(bad("ANN section max level out of range"));
        }
        // `n`/`dim` come from the file: all size math is checked so a
        // corrupt header reports InvalidData instead of overflowing.
        let vec_bytes = n
            .checked_mul(dim)
            .and_then(|e| e.checked_mul(4))
            .ok_or_else(|| bad("ANN section header sizes overflow"))?;
        let labels: Vec<u32> = c
            .take(4 * n)?
            .chunks_exact(4)
            .map(|w| u32::from_le_bytes(w.try_into().unwrap()))
            .collect();
        let levels: Vec<u8> = c.take(n)?.to_vec();
        let pad = c.pos.next_multiple_of(ANN_SECTION_ALIGN) - c.pos;
        if c.take(pad)?.iter().any(|&b| b != 0) {
            return Err(bad("ANN section alignment padding not zeroed"));
        }
        let vec_slice = c.take(vec_bytes)?;
        let vectors = match &keep {
            Some(owner)
                if cfg!(target_endian = "little")
                    && (vec_slice.as_ptr() as usize).is_multiple_of(4) =>
            {
                // SAFETY: alignment just checked, any bit pattern is a
                // valid f32, and `owner` keeps the backing memory alive
                // and immutable per this function's contract.
                VecStorage::Borrowed {
                    ptr: vec_slice.as_ptr() as *const f32,
                    len: n * dim,
                    _keep: Arc::clone(owner),
                }
            }
            _ => VecStorage::Owned(
                vec_slice
                    .chunks_exact(4)
                    .map(|w| f32::from_le_bytes(w.try_into().unwrap()))
                    .collect(),
            ),
        };
        let mut links = Vec::with_capacity(n);
        for &level in &levels {
            let mut layers = Vec::with_capacity(level as usize + 1);
            for _ in 0..=level {
                let count = c.u32()? as usize;
                if count > n {
                    return Err(bad("ANN section neighbor count exceeds node count"));
                }
                let list: Vec<u32> = c
                    .take(4 * count)?
                    .chunks_exact(4)
                    .map(|w| u32::from_le_bytes(w.try_into().unwrap()))
                    .collect();
                layers.push(list);
            }
            links.push(layers);
        }
        if c.pos != bytes.len() {
            return Err(bad("ANN section has trailing bytes"));
        }
        let cfg = HnswConfig {
            m,
            ef_construction: ef_construction.max(1),
            ef_search: ef_search.max(1),
            seed,
        };
        let index = AnnIndex::from_raw_parts(crate::hnsw::OwnedParts {
            cfg,
            dim,
            vectors,
            labels,
            levels,
            links,
            entry,
            max_level: max_level as u8,
        });
        index.validate_structure().map_err(|e| bad(e.to_string()))?;
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index(seed: u64) -> AnnIndex {
        let n = 40usize;
        let dim = 3usize;
        let vectors: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 37 % 97) as f32) * 0.25)
            .collect();
        let labels: Vec<u32> = (0..n).map(|i| (i % 5) as u32).collect();
        AnnIndex::build(dim, vectors, labels, HnswConfig::with_seed(seed)).unwrap()
    }

    fn to_bytes(index: &AnnIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_bytes_and_results() {
        let index = sample_index(9);
        let bytes = to_bytes(&index);
        assert_eq!(bytes.len(), index.serialized_len());
        let back = AnnIndex::read_from(&mut &bytes[..]).unwrap();
        assert_eq!(to_bytes(&back), bytes, "reserialization changed bytes");

        let mut s1 = crate::SearchScratch::new();
        let mut s2 = crate::SearchScratch::new();
        let q = [1.0f32, 2.0, 3.0];
        assert_eq!(index.search(&q, 6, &mut s1), back.search(&q, 6, &mut s2));
    }

    #[test]
    fn corrupt_bytes_are_typed_errors_not_panics() {
        let bytes = to_bytes(&sample_index(4));
        // Flip one byte at every offset: all must fail cleanly or parse to
        // a structurally valid index (magic/version/length/checksum guard).
        for pos in [0usize, 4, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let got = AnnIndex::read_from(&mut &bad[..]);
            assert!(got.is_err(), "flip at {pos} was not detected");
            assert_eq!(got.unwrap_err().kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = to_bytes(&sample_index(4));
        for keep in [3usize, 11, 17, bytes.len() / 3, bytes.len() - 1] {
            let got = AnnIndex::read_from(&mut &bytes[..keep]);
            assert!(got.is_err(), "truncation to {keep} bytes was not detected");
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = to_bytes(&sample_index(4));
        bytes[4] = 9;
        let err = AnnIndex::read_from(&mut &bytes[..]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = to_bytes(&sample_index(4));
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(AnnIndex::read_from(&mut &bytes[..]).is_err());
    }

    #[test]
    fn huge_header_sizes_error_instead_of_overflowing() {
        // A corrupt-but-checksummed header claiming u32::MAX nodes of
        // u32::MAX dims makes `4 * n * dim` exceed usize; the size math
        // must report InvalidData rather than panic on overflow (debug
        // builds) or wrap (release).
        let mut bytes = to_bytes(&sample_index(4));
        bytes[36..40].copy_from_slice(&u32::MAX.to_le_bytes()); // dim (body offset 20)
        bytes[44..48].copy_from_slice(&u32::MAX.to_le_bytes()); // n (body offset 24)
        let body_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let sum = fnv1a(&bytes[16..16 + body_len]);
        bytes[16 + body_len..16 + body_len + 8].copy_from_slice(&sum.to_le_bytes());
        let err = AnnIndex::read_from(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn aligned_roundtrip_owned_and_borrowed_agree() {
        let index = sample_index(9);
        let bytes = index.write_aligned();
        // Owned parse (no keepalive).
        let owned = AnnIndex::read_aligned(&bytes, None).unwrap();
        assert!(!owned.is_borrowed());
        // Borrowed parse: the Vec is 4-aligned in practice, but the code
        // copies if not, so either storage mode must give identical results.
        let keep: Arc<Vec<u8>> = Arc::new(bytes.clone());
        // SAFETY: `keep` is cloned into the index as its keepalive, so the
        // view outlives every borrow taken from it.
        #[allow(unsafe_code)]
        let view = unsafe { std::slice::from_raw_parts(keep.as_ptr(), keep.len()) };
        let borrowed = AnnIndex::read_aligned(view, Some(keep.clone() as _)).unwrap();
        let mut s = crate::SearchScratch::new();
        let q = [1.0f32, 2.0, 3.0];
        let want = index.search(&q, 7, &mut s).to_vec();
        let mut s2 = crate::SearchScratch::new();
        assert_eq!(owned.search(&q, 7, &mut s2), &want[..]);
        let mut s3 = crate::SearchScratch::new();
        assert_eq!(borrowed.search(&q, 7, &mut s3), &want[..]);
        // Re-serialization is byte-identical regardless of storage mode.
        assert_eq!(owned.write_aligned(), bytes);
        assert_eq!(borrowed.write_aligned(), bytes);
    }

    #[test]
    fn aligned_vectors_block_is_64_aligned_relative_to_section() {
        for seed in [4u64, 9, 21] {
            let index = sample_index(seed);
            let bytes = index.write_aligned();
            let n = index.len();
            let voff = (44 + 5 * n).next_multiple_of(ANN_SECTION_ALIGN);
            let dim = index.dim();
            let got: Vec<f32> = bytes[voff..voff + 4 * n * dim]
                .chunks_exact(4)
                .map(|w| f32::from_le_bytes(w.try_into().unwrap()))
                .collect();
            assert_eq!(&got[..dim], index.vector(0), "seed {seed}");
        }
    }

    #[test]
    fn aligned_truncation_and_trailing_bytes_rejected() {
        let bytes = sample_index(4).write_aligned();
        for keep in [3usize, 12, 47, bytes.len() / 2, bytes.len() - 1] {
            let err = AnnIndex::read_aligned(&bytes[..keep], None).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "keep {keep}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(AnnIndex::read_aligned(&long, None).is_err());
        // The classic stream reader must not accept the aligned layout.
        assert!(AnnIndex::read_from(&mut &bytes[..]).is_err());
    }

    #[test]
    fn aligned_huge_header_sizes_error_instead_of_overflowing() {
        let mut bytes = sample_index(4).write_aligned();
        bytes[28..32].copy_from_slice(&u32::MAX.to_le_bytes()); // dim
        bytes[32..36].copy_from_slice(&u32::MAX.to_le_bytes()); // n
        let err = AnnIndex::read_aligned(&bytes, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn two_builds_serialize_identically() {
        assert_eq!(to_bytes(&sample_index(21)), to_bytes(&sample_index(21)));
        assert_ne!(
            to_bytes(&sample_index(21)),
            to_bytes(&sample_index(22)),
            "seed should perturb the graph"
        );
    }
}
