//! Deterministic approximate-nearest-neighbor search for serve-time kNN
//! interpolation (ROADMAP item 3).
//!
//! The paper's implicit-mutual-relation signal helps exactly where distant
//! supervision is thinnest — long-tail entity pairs. *Nearest Neighbor
//! Relation Extraction* (Wan et al., 2022) shows the complementary
//! inference-time move: retrieve the K nearest **training** bags in
//! representation space and interpolate their label distribution with the
//! model's own scores,
//!
//! ```text
//! P(r) = (1 − λ) · softmax(logits)_r + λ · knn_r
//! knn_r = |{neighbors with label r}| / K
//! ```
//!
//! This crate provides the index: a std-only HNSW ([`AnnIndex`]) over the
//! pooled bag representations produced by `ReModel::predict_repr`, built
//! once at training time and shipped inside the `.imrb` bundle.
//!
//! # Determinism contract
//!
//! Index construction is a pure function of `(vectors, labels, config)`:
//!
//! - every node's top layer is derived from `(seed, id)` through a
//!   SplitMix64 mix — no global RNG, no insertion-time state;
//! - nodes are inserted in ascending id order on a single thread;
//! - every ordering decision (candidate pops, neighbor selection, overflow
//!   pruning, result ranking) compares packed `(distance_bits, id)` keys,
//!   so ties break by id, never by heap accident.
//!
//! Two builds from the same inputs are byte-identical after serialization,
//! regardless of `--threads` (the compute pool is simply not consulted).
//! Searches are likewise deterministic: same index + query + k → same
//! neighbor slice, bit for bit.
//!
//! # Allocation contract
//!
//! [`AnnIndex::search`] performs **zero heap allocations** once its
//! [`SearchScratch`] is warm: the visited-epoch table, both heaps, and the
//! output buffer are owned by the scratch and retain capacity across
//! queries. The serve engine keeps one scratch per worker next to its
//! buffer-pool arena (DESIGN.md §4e/§4g).

#![deny(missing_docs)]
// Unsafe is denied, not forbidden: the one sanctioned exception is the
// zero-copy vector storage (`hnsw::VecStorage::Borrowed`) that lets a v3
// bundle's memory-mapped vectors back an index without a copy. Each use
// site carries an `allow` plus a SAFETY comment; everything else is safe.
#![deny(unsafe_code)]

mod hnsw;
mod serialize;

pub use hnsw::{exact_knn, AnnError, AnnIndex, HnswConfig, Neighbor, SearchScratch};
pub use serialize::{ANN_ALIGNED_VERSION, ANN_MAGIC, ANN_SECTION_ALIGN, ANN_VERSION};

/// Blends a model score vector with a kNN label distribution in place:
/// `s_r ← (1 − λ)·s_r + λ·votes_r`.
///
/// `lambda == 0` is an exact no-op (the slice is untouched, preserving
/// bit-identity with the pure model path); callers on the serve hot path
/// skip the kNN query entirely in that case.
pub fn blend_scores(scores: &mut [f32], votes: &[f32], lambda: f32) {
    if lambda == 0.0 {
        return;
    }
    debug_assert_eq!(scores.len(), votes.len());
    for (s, &v) in scores.iter_mut().zip(votes) {
        *s = (1.0 - lambda) * *s + lambda * v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blend_lambda_zero_is_identity() {
        let orig = [0.125f32, 0.5, 0.375];
        let mut scores = orig;
        blend_scores(&mut scores, &[1.0, 0.0, 0.0], 0.0);
        assert_eq!(scores.map(f32::to_bits), orig.map(f32::to_bits));
    }

    #[test]
    fn blend_lambda_one_is_votes() {
        let mut scores = [0.2f32, 0.3, 0.5];
        blend_scores(&mut scores, &[0.0, 0.75, 0.25], 1.0);
        assert_eq!(scores, [0.0, 0.75, 0.25]);
    }

    #[test]
    fn blend_mixes_linearly() {
        let mut scores = [1.0f32, 0.0];
        blend_scores(&mut scores, &[0.0, 1.0], 0.25);
        assert!((scores[0] - 0.75).abs() < 1e-6);
        assert!((scores[1] - 0.25).abs() < 1e-6);
    }
}
