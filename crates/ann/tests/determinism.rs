//! The index-build determinism contract (ISSUE 6 / DESIGN.md §4g): building
//! twice from the same inputs yields byte-identical serializations, the
//! seed is the only source of structural variation, and searches are pure
//! functions of `(index, query, k)`. The `--threads` half of the contract
//! (representations computed under differing compute pools feeding
//! identical bundles) lives in `imre-serve`'s `bundle_compat` suite, since
//! `imre-ann` itself never consults the thread pool.

use imre_ann::{AnnIndex, HnswConfig, SearchScratch};

fn clustered_vectors(n: usize, dim: usize) -> (Vec<f32>, Vec<u32>) {
    // Three deterministic Gaussian-ish blobs via an LCG — no std RNG, so
    // the fixture itself is reproducible.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32 - 0.5
    };
    let mut vectors = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let cluster = i % 3;
        labels.push(cluster as u32);
        for d in 0..dim {
            let center = if d == cluster { 4.0 } else { 0.0 };
            vectors.push(center + next());
        }
    }
    (vectors, labels)
}

fn build_bytes(seed: u64) -> Vec<u8> {
    let (vectors, labels) = clustered_vectors(300, 6);
    let index = AnnIndex::build(6, vectors, labels, HnswConfig::with_seed(seed)).unwrap();
    let mut bytes = Vec::new();
    index.write_to(&mut bytes).unwrap();
    bytes
}

#[test]
fn repeated_builds_are_byte_identical() {
    assert_eq!(build_bytes(42), build_bytes(42));
}

#[test]
fn seed_is_the_only_structural_knob() {
    assert_ne!(build_bytes(1), build_bytes(2));
}

#[test]
fn search_is_reproducible_across_scratches_and_roundtrips() {
    let bytes = build_bytes(7);
    let a = AnnIndex::read_from(&mut &bytes[..]).unwrap();
    let b = AnnIndex::read_from(&mut &bytes[..]).unwrap();
    let (vectors, _) = clustered_vectors(300, 6);
    let mut sa = SearchScratch::new();
    let mut sb = SearchScratch::new();
    for q in vectors.chunks_exact(6).step_by(17) {
        assert_eq!(a.search(q, 8, &mut sa), b.search(q, 8, &mut sb));
    }
}

#[test]
fn clustered_queries_retrieve_their_own_cluster() {
    // The serve-time premise: representation-space neighbors share labels.
    let (vectors, labels) = clustered_vectors(300, 6);
    let index = AnnIndex::build(6, vectors, labels, HnswConfig::with_seed(3)).unwrap();
    let mut scratch = SearchScratch::new();
    let mut votes = vec![0.0f32; 3];
    for cluster in 0..3usize {
        let mut q = vec![0.0f32; 6];
        q[cluster] = 4.0;
        let neighbors = index.search(&q, 16, &mut scratch).to_vec();
        index.label_votes_into(&neighbors, &mut votes);
        assert!(
            votes[cluster] > 0.9,
            "cluster {cluster} votes {votes:?} not dominated by its own label"
        );
    }
}
