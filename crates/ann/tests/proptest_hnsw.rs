//! Property tests: on inputs small enough that the layer-0 graph is
//! complete (`n ≤ m + 1`, every insertion links to all prior nodes and no
//! overflow pruning fires), HNSW search with `ef ≥ n` is **exhaustive** and
//! must therefore equal brute-force exact kNN — order included, since both
//! sides rank by `(dist, id)`. Larger inputs check the bounded-recall +
//! determinism contract instead: repeated searches are identical, and
//! recall against brute force stays high.

use imre_ann::{exact_knn, AnnIndex, HnswConfig, SearchScratch};
use proptest::prelude::*;

fn flat(points: &[Vec<f32>]) -> Vec<f32> {
    points.iter().flatten().copied().collect()
}

proptest! {
    #[test]
    fn small_index_search_equals_brute_force(
        points in proptest::collection::vec(
            proptest::collection::vec(-8.0f32..8.0, 3), 1..17),
        query in proptest::collection::vec(-8.0f32..8.0, 3),
        k in 1usize..8,
        seed in 0u64..64,
    ) {
        let n = points.len();
        let cfg = HnswConfig { m: 16, ef_construction: 64, ef_search: 32, seed };
        let vectors = flat(&points);
        let labels: Vec<u32> = (0..n as u32).collect();
        let index = AnnIndex::build(3, vectors.clone(), labels, cfg).unwrap();
        let mut scratch = SearchScratch::new();
        let got = index.search(&query, k, &mut scratch).to_vec();
        let want = exact_knn(3, &vectors, &query, k);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn search_is_deterministic_and_high_recall(
        points in proptest::collection::vec(
            proptest::collection::vec(-4.0f32..4.0, 4), 30..120),
        query in proptest::collection::vec(-4.0f32..4.0, 4),
        seed in 0u64..16,
    ) {
        let n = points.len();
        let cfg = HnswConfig { m: 8, ef_construction: 48, ef_search: 48, seed };
        let vectors = flat(&points);
        let labels: Vec<u32> = (0..n as u32).collect();
        let index = AnnIndex::build(4, vectors.clone(), labels, cfg).unwrap();
        let k = 5usize;

        let mut s1 = SearchScratch::new();
        let first = index.search(&query, k, &mut s1).to_vec();
        // A fresh scratch and a reused scratch must agree bit for bit.
        let second = index.search(&query, k, &mut s1).to_vec();
        let mut s2 = SearchScratch::new();
        let third = index.search(&query, k, &mut s2).to_vec();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &third);

        let want = exact_knn(4, &vectors, &query, k);
        let hits = first.iter().filter(|nb| want.iter().any(|w| w.id == nb.id)).count();
        prop_assert!(hits * 2 >= k, "recall collapsed: {hits}/{k}");
    }

    #[test]
    fn serialization_roundtrips_arbitrary_indices(
        points in proptest::collection::vec(
            proptest::collection::vec(-4.0f32..4.0, 2), 1..60),
        seed in 0u64..32,
    ) {
        let n = points.len();
        let labels: Vec<u32> = (0..n).map(|i| (i % 7) as u32).collect();
        let index = AnnIndex::build(2, flat(&points), labels, HnswConfig::with_seed(seed)).unwrap();
        let mut bytes = Vec::new();
        index.write_to(&mut bytes).unwrap();
        let back = AnnIndex::read_from(&mut &bytes[..]).unwrap();
        let mut bytes2 = Vec::new();
        back.write_to(&mut bytes2).unwrap();
        prop_assert_eq!(bytes, bytes2);
    }
}
