//! Relation schemas and sentence templates.
//!
//! A handful of relations are hand-curated with realistic names, type
//! signatures and trigger vocabulary (enough for the paper's case study to
//! read naturally); the remainder — NYT has 53 relation labels — are
//! synthesised systematically with distinct trigger tokens so every relation
//! is lexically learnable but shares the same generative machinery.

use crate::types::TypeId;
use imre_tensor::TensorRng;

/// Identifier of a relation label. Index 0 is always `NA` (no relation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub usize);

/// The reserved "no relation" label.
pub const NA: RelationId = RelationId(0);

/// A relation label with its argument-type signature and trigger vocabulary.
#[derive(Debug, Clone)]
pub struct RelationSchema {
    /// Label, e.g. `/location/location/contains`.
    pub name: String,
    /// Required coarse type of the head entity.
    pub head_type: TypeId,
    /// Required coarse type of the tail entity.
    pub tail_type: TypeId,
    /// Words that (noisily) signal this relation in text.
    pub triggers: Vec<String>,
}

/// Hand-curated relations: name, head type, tail type, triggers.
///
/// Types reference [`crate::types::COARSE_TYPES`] by name.
const CURATED: &[(&str, &str, &str, &[&str])] = &[
    (
        "/location/location/contains",
        "location",
        "location",
        &["in", "within", "part", "contains", "area"],
    ),
    (
        "/people/person/place_of_birth",
        "person",
        "location",
        &["born", "native", "birthplace", "raised"],
    ),
    (
        "/people/person/nationality",
        "person",
        "location",
        &["citizen", "nationality", "from"],
    ),
    (
        "/business/company/founders",
        "organization",
        "person",
        &["founded", "founder", "started", "established"],
    ),
    (
        "/people/person/place_lived",
        "person",
        "location",
        &["lives", "resident", "moved", "home"],
    ),
    (
        "/location/country/capital",
        "location",
        "location",
        &["capital", "seat", "government"],
    ),
    (
        "/people/person/employee_of",
        "person",
        "organization",
        &["works", "employee", "joined", "staff"],
    ),
    (
        "/education/university/located_in",
        "education",
        "location",
        &["campus", "located", "university", "in"],
    ),
    (
        "/business/company/place_founded",
        "organization",
        "location",
        &["founded", "headquarters", "based"],
    ),
    (
        "/people/person/children",
        "person",
        "person",
        &["son", "daughter", "child", "father", "mother"],
    ),
    (
        "/sports/team/location",
        "organization",
        "location",
        &["team", "plays", "stadium", "hosts"],
    ),
    (
        "/film/film/directed_by",
        "art",
        "person",
        &["directed", "film", "director", "shot"],
    ),
    (
        "/music/artist/origin",
        "music",
        "location",
        &["band", "formed", "origin", "scene"],
    ),
    (
        "/government/politician/represents",
        "person",
        "government",
        &["senator", "elected", "represents", "district"],
    ),
    (
        "/book/author/wrote",
        "person",
        "written_work",
        &["wrote", "author", "published", "novel"],
    ),
];

/// Builds `n_relations` schemas (including `NA` at index 0).
///
/// The first schemas come from the curated table; the rest are synthesised
/// with unique trigger tokens (`rel<k>_sig<j>`) and type signatures drawn
/// from the coarse-type table. `NA` has an empty trigger set and a dummy
/// signature — it is never generated from triggers.
///
/// # Panics
/// If `n_relations` is 0.
pub fn build_relations(n_relations: usize, rng: &mut TensorRng) -> Vec<RelationSchema> {
    assert!(
        n_relations > 0,
        "build_relations: need at least the NA relation"
    );
    let mut out = Vec::with_capacity(n_relations);
    out.push(RelationSchema {
        name: "NA".to_string(),
        head_type: TypeId(0),
        tail_type: TypeId(0),
        triggers: Vec::new(),
    });
    for k in 1..n_relations {
        if let Some(&(name, ht, tt, trig)) = CURATED.get(k - 1) {
            out.push(RelationSchema {
                name: name.to_string(),
                head_type: TypeId::by_name(ht).expect("curated head type"),
                tail_type: TypeId::by_name(tt).expect("curated tail type"),
                triggers: trig.iter().map(|s| s.to_string()).collect(),
            });
        } else {
            // Synthetic relations draw their argument types from a small
            // popular subset (as real KG schemas do: most NYT relations are
            // person/location/organization). The resulting signature
            // collisions keep the type component a *prior*, not an oracle.
            let popular = POPULAR_TYPE_COUNT.min(crate::types::NUM_COARSE_TYPES);
            let head_type = TypeId(rng.below(popular));
            let tail_type = TypeId(rng.below(popular));
            let mut triggers: Vec<String> = (0..3).map(|j| format!("rel{k}_sig{j}")).collect();
            // half the relations also use an ambiguous shared trigger
            if rng.bernoulli(0.5) {
                triggers.push(SHARED_TRIGGERS[rng.below(SHARED_TRIGGERS.len())].to_string());
            }
            out.push(RelationSchema {
                name: format!("/synthetic/relation_{k}"),
                head_type,
                tail_type,
                triggers,
            });
        }
    }
    out
}

/// How many of the coarse types synthetic relations draw arguments from.
const POPULAR_TYPE_COUNT: usize = 10;

/// Triggers shared across several relations — lexical ambiguity that keeps
/// single-word cues from being sufficient.
pub const SHARED_TRIGGERS: [&str; 8] = [
    "joined",
    "opened",
    "led",
    "supported",
    "launched",
    "signed",
    "served",
    "backed",
];

/// Generic filler vocabulary used by every sentence (relation-neutral).
pub const GENERIC_WORDS: [&str; 60] = [
    "the",
    "a",
    "an",
    "of",
    "and",
    "to",
    "was",
    "is",
    "were",
    "are",
    "on",
    "at",
    "by",
    "with",
    "for",
    "that",
    "this",
    "it",
    "as",
    "from",
    "said",
    "reported",
    "according",
    "officials",
    "yesterday",
    "today",
    "week",
    "year",
    "month",
    "new",
    "old",
    "large",
    "small",
    "local",
    "national",
    "announced",
    "visited",
    "met",
    "spoke",
    "during",
    "after",
    "before",
    "while",
    "city",
    "state",
    "country",
    "company",
    "group",
    "president",
    "director",
    "member",
    "people",
    "news",
    "story",
    "report",
    "article",
    "interview",
    "meeting",
    "conference",
    "event",
];

/// Noise sentence connectors — used for sentences that mention both entities
/// without expressing their KG relation (the distant-supervision failure
/// mode the paper's Figure-of-merit experiments depend on).
pub const NOISE_CONNECTORS: [&str; 12] = [
    "visited",
    "mentioned",
    "discussed",
    "near",
    "alongside",
    "compared",
    "toured",
    "praised",
    "criticized",
    "photographed",
    "interviewed",
    "hosted",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn na_is_index_zero() {
        let mut rng = TensorRng::seed(1);
        let rels = build_relations(5, &mut rng);
        assert_eq!(rels[0].name, "NA");
        assert!(rels[0].triggers.is_empty());
    }

    #[test]
    fn curated_then_synthetic() {
        let mut rng = TensorRng::seed(2);
        let rels = build_relations(53, &mut rng);
        assert_eq!(rels.len(), 53);
        assert_eq!(rels[1].name, "/location/location/contains");
        assert!(rels[20].name.starts_with("/synthetic/"));
        // every non-NA relation has triggers
        for r in &rels[1..] {
            assert!(!r.triggers.is_empty(), "{} lacks triggers", r.name);
        }
    }

    #[test]
    fn synthetic_relations_have_unique_plus_shared_triggers() {
        let mut rng = TensorRng::seed(3);
        let rels = build_relations(53, &mut rng);
        for (k, r) in rels.iter().enumerate().skip(16) {
            let unique = r
                .triggers
                .iter()
                .filter(|t| t.starts_with(&format!("rel{k}_")))
                .count();
            assert_eq!(unique, 3, "{} should keep 3 unique triggers", r.name);
            assert!(r.triggers.len() <= 4);
        }
        // at least some relations share an ambiguous trigger
        let shared_used = rels[16..]
            .iter()
            .flat_map(|r| &r.triggers)
            .filter(|t| SHARED_TRIGGERS.contains(&t.as_str()))
            .count();
        assert!(
            shared_used > 5,
            "shared triggers should appear ({shared_used})"
        );
    }

    #[test]
    fn synthetic_type_signatures_collide() {
        let mut rng = TensorRng::seed(4);
        let rels = build_relations(53, &mut rng);
        let mut sigs: Vec<(usize, usize)> = rels[16..]
            .iter()
            .map(|r| (r.head_type.0, r.tail_type.0))
            .collect();
        let before = sigs.len();
        sigs.sort_unstable();
        sigs.dedup();
        assert!(sigs.len() < before, "expected colliding type signatures");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = TensorRng::seed(7);
        let mut b = TensorRng::seed(7);
        let ra = build_relations(30, &mut a);
        let rb = build_relations(30, &mut b);
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.head_type, y.head_type);
            assert_eq!(x.tail_type, y.tail_type);
        }
    }

    #[test]
    #[should_panic(expected = "at least the NA relation")]
    fn zero_relations_panics() {
        let mut rng = TensorRng::seed(1);
        let _ = build_relations(0, &mut rng);
    }
}
