//! Bag-structured distant-supervision datasets and the NYT-sim / GDS-sim
//! presets that stand in for the paper's two evaluation corpora.
//!
//! Multi-instance learning operates on *bags*: all sentences mentioning one
//! entity pair, labelled with the pair's KG relation (or `NA`). Sentence
//! counts per pair follow a Zipf law, reproducing the long-tailed frequency
//! distribution of Figure 1 that motivates the whole paper — most pairs have
//! very few training sentences.

use crate::sentences::{generate_sentence, EncodedSentence, SentenceGenConfig};
use crate::templates::{RelationId, NA};
use crate::vocab::Vocab;
use crate::world::{EntityId, World, WorldConfig};
use imre_tensor::TensorRng;

/// All sentences for one entity pair plus its distant-supervision label.
#[derive(Debug, Clone)]
pub struct Bag {
    /// Head entity.
    pub head: EntityId,
    /// Tail entity.
    pub tail: EntityId,
    /// Distant-supervision label (KG relation, or `NA`).
    pub label: RelationId,
    /// The pair's sentences.
    pub sentences: Vec<EncodedSentence>,
}

/// A Zipf sampler over `1..=max_k` with exponent `alpha`.
///
/// Used for per-pair sentence counts (training corpus) and per-pair
/// co-occurrence counts (unlabeled corpus).
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF of `P(k) ∝ k^{−alpha}` for `k ∈ 1..=max_k`.
    ///
    /// # Panics
    /// If `max_k == 0`.
    pub fn new(max_k: usize, alpha: f64) -> Self {
        assert!(max_k > 0, "Zipf: max_k must be positive");
        let mut cumulative = Vec::with_capacity(max_k);
        let mut total = 0.0;
        for k in 1..=max_k {
            total += (k as f64).powf(-alpha);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Draws a sample in `1..=max_k`.
    pub fn sample(&self, rng: &mut TensorRng) -> usize {
        let u = rng.f32() as f64;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite CDF"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cumulative.len()),
        }
    }
}

/// Configuration of a full dataset build.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Display name (`NYT-sim`, `GDS-sim`).
    pub name: String,
    /// World-model parameters.
    pub world: WorldConfig,
    /// Sentence-generation parameters (noise rate, lengths).
    pub sentence: SentenceGenConfig,
    /// Fraction of fact pairs assigned to the training split.
    pub train_fraction: f32,
    /// Number of `NA` bags in the training split.
    pub na_train: usize,
    /// Number of `NA` bags in the test split.
    pub na_test: usize,
    /// Fraction of `NA` bags drawn as *hard* negatives (type-compatible
    /// pairs from a relation's own clusters; see
    /// [`World::sample_hard_na_pair`]).
    pub na_hard_fraction: f32,
    /// Zipf exponent for per-pair sentence counts.
    pub zipf_alpha: f64,
    /// Maximum sentences per bag.
    pub max_sentences_per_bag: usize,
    /// Seed for sentence generation and splitting (world has its own seed).
    pub seed: u64,
}

/// A generated dataset: the world, its vocabulary, and train/test bags.
pub struct Dataset {
    /// Display name.
    pub name: String,
    /// The underlying world model (entities, clusters, relations, facts).
    pub world: World,
    /// Token vocabulary covering every generated sentence.
    pub vocab: Vocab,
    /// Training bags (fact pairs + `NA` pairs).
    pub train: Vec<Bag>,
    /// Held-out test bags (disjoint pairs).
    pub test: Vec<Bag>,
}

impl Dataset {
    /// Builds a dataset deterministically from its config.
    pub fn generate(config: &DatasetConfig) -> Dataset {
        let world = World::generate(&config.world);
        let mut vocab = Vocab::new();
        let mut rng = TensorRng::seed(config.seed);
        let zipf = Zipf::new(config.max_sentences_per_bag, config.zipf_alpha);

        // Split fact pairs into train/test.
        let mut fact_indices: Vec<usize> = (0..world.facts.len()).collect();
        rng.shuffle(&mut fact_indices);
        let n_train = (fact_indices.len() as f32 * config.train_fraction).round() as usize;

        let make_bag = |world: &World,
                        vocab: &mut Vocab,
                        head: EntityId,
                        tail: EntityId,
                        label: RelationId,
                        rng: &mut TensorRng|
         -> Bag {
            let n = zipf.sample(rng);
            let schema = if label == NA {
                None
            } else {
                Some(world.relations[label.0].clone())
            };
            let sentences = (0..n)
                .map(|_| {
                    generate_sentence(
                        world,
                        vocab,
                        head,
                        tail,
                        schema.as_ref(),
                        &config.sentence,
                        rng,
                    )
                })
                .collect();
            Bag {
                head,
                tail,
                label,
                sentences,
            }
        };

        let mut train = Vec::with_capacity(n_train + config.na_train);
        let mut test = Vec::with_capacity(fact_indices.len() - n_train + config.na_test);
        for (i, &fi) in fact_indices.iter().enumerate() {
            let f = world.facts[fi];
            let bag = make_bag(&world, &mut vocab, f.head, f.tail, f.relation, &mut rng);
            if i < n_train {
                train.push(bag);
            } else {
                test.push(bag);
            }
        }

        // NA bags: sampled pairs with no fact, disjoint between splits.
        let mut used: std::collections::HashSet<(usize, usize)> =
            world.facts.iter().map(|f| (f.head.0, f.tail.0)).collect();
        for (count, split) in [(config.na_train, &mut train), (config.na_test, &mut test)] {
            'bags: for _ in 0..count {
                // bounded rejection sampling: a saturated or tiny world may
                // not have `count` distinct NA pairs — degrade gracefully
                // with fewer NA bags rather than looping forever
                let mut found = None;
                for _ in 0..10_000 {
                    let pair = if rng.bernoulli(config.na_hard_fraction) {
                        world.try_sample_hard_na_pair(&mut rng)
                    } else {
                        world.try_sample_na_pair(&mut rng)
                    };
                    match pair {
                        None => break 'bags,
                        Some((h, t)) if !used.contains(&(h.0, t.0)) => {
                            used.insert((h.0, t.0));
                            found = Some((h, t));
                            break;
                        }
                        Some(_) => {}
                    }
                }
                let Some((h, t)) = found else { break 'bags };
                let bag = make_bag(&world, &mut vocab, h, t, NA, &mut rng);
                split.push(bag);
            }
        }
        rng.shuffle(&mut train);
        rng.shuffle(&mut test);

        Dataset {
            name: config.name.clone(),
            world,
            vocab,
            train,
            test,
        }
    }

    /// Number of relation labels including `NA`.
    pub fn num_relations(&self) -> usize {
        self.world.num_relations()
    }

    /// Total sentence count in a split.
    pub fn sentence_count(bags: &[Bag]) -> usize {
        bags.iter().map(|b| b.sentences.len()).sum()
    }

    /// The longest sentence (token count) anywhere in the dataset.
    pub fn max_sentence_len(&self) -> usize {
        self.train
            .iter()
            .chain(&self.test)
            .flat_map(|b| &b.sentences)
            .map(|s| s.tokens.len())
            .max()
            .unwrap_or(0)
    }
}

/// Preset matching the *shape* of the NYT corpus: 53 relations, long-tailed
/// pair frequencies, high distant-supervision noise. Scale is reduced (the
/// original has 522 k training sentences) to fit a CPU-only run; relative
/// statistics (NA fraction, tail heaviness, noise) mirror the original.
pub fn nyt_sim(seed: u64) -> DatasetConfig {
    DatasetConfig {
        name: "NYT-sim".to_string(),
        world: WorldConfig {
            n_relations: 53,
            entities_per_cluster: 14,
            facts_per_relation: 60,
            cluster_reuse_prob: 0.5,
            seed: seed ^ 0x9e37_79b9,
        },
        sentence: SentenceGenConfig {
            noise_prob: 0.55,
            min_len: 8,
            max_len: 24,
        },
        train_fraction: 0.72,
        na_train: 3400,
        na_test: 1300,
        na_hard_fraction: 0.3,
        zipf_alpha: 1.7,
        max_sentences_per_bag: 40,
        seed,
    }
}

/// Preset matching the *shape* of the Google Distant Supervision corpus:
/// 5 relations, smaller and cleaner than NYT (GDS guarantees at least one
/// expressing sentence per bag, so its effective noise is low).
pub fn gds_sim(seed: u64) -> DatasetConfig {
    DatasetConfig {
        name: "GDS-sim".to_string(),
        world: WorldConfig {
            n_relations: 5,
            entities_per_cluster: 24,
            facts_per_relation: 150,
            cluster_reuse_prob: 0.3,
            seed: seed ^ 0x51f1_5ead,
        },
        sentence: SentenceGenConfig {
            noise_prob: 0.15,
            min_len: 8,
            max_len: 20,
        },
        train_fraction: 0.70,
        na_train: 300,
        na_test: 130,
        na_hard_fraction: 0.5,
        zipf_alpha: 2.0,
        max_sentences_per_bag: 30,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DatasetConfig {
        DatasetConfig {
            name: "tiny".to_string(),
            world: WorldConfig {
                n_relations: 6,
                entities_per_cluster: 8,
                facts_per_relation: 15,
                cluster_reuse_prob: 0.4,
                seed: 2,
            },
            sentence: SentenceGenConfig::default(),
            train_fraction: 0.7,
            na_train: 30,
            na_test: 15,
            na_hard_fraction: 0.5,
            zipf_alpha: 1.8,
            max_sentences_per_bag: 20,
            seed: 4,
        }
    }

    #[test]
    fn zipf_mass_concentrates_on_small_k() {
        let z = Zipf::new(50, 2.0);
        let mut rng = TensorRng::seed(1);
        let draws: Vec<usize> = (0..5000).map(|_| z.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&k| (1..=50).contains(&k)));
        let ones = draws.iter().filter(|&&k| k == 1).count() as f32 / 5000.0;
        // P(1) = 1/ζ(2, 50) ≈ 0.62 for alpha=2
        assert!(ones > 0.5, "P(k=1) sampled as {ones}");
        let tail = draws.iter().filter(|&&k| k > 10).count();
        assert!(tail > 0, "long tail entirely missing");
    }

    #[test]
    fn splits_are_pair_disjoint() {
        let ds = Dataset::generate(&tiny());
        let train_pairs: std::collections::HashSet<(usize, usize)> =
            ds.train.iter().map(|b| (b.head.0, b.tail.0)).collect();
        for b in &ds.test {
            assert!(
                !train_pairs.contains(&(b.head.0, b.tail.0)),
                "pair leaks across splits"
            );
        }
    }

    #[test]
    fn labels_match_world_facts() {
        let ds = Dataset::generate(&tiny());
        for b in ds.train.iter().chain(&ds.test) {
            match ds.world.relation_of(b.head, b.tail) {
                Some(r) => assert_eq!(b.label, r),
                None => assert_eq!(b.label, NA),
            }
        }
    }

    #[test]
    fn every_bag_nonempty_and_within_cap() {
        let cfg = tiny();
        let ds = Dataset::generate(&cfg);
        for b in ds.train.iter().chain(&ds.test) {
            assert!(!b.sentences.is_empty());
            assert!(b.sentences.len() <= cfg.max_sentences_per_bag);
        }
    }

    #[test]
    fn na_bag_counts_respected() {
        let cfg = tiny();
        let ds = Dataset::generate(&cfg);
        let na_train = ds.train.iter().filter(|b| b.label == NA).count();
        let na_test = ds.test.iter().filter(|b| b.label == NA).count();
        assert_eq!(na_train, cfg.na_train);
        assert_eq!(na_test, cfg.na_test);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Dataset::generate(&tiny());
        let b = Dataset::generate(&tiny());
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.head, y.head);
            assert_eq!(x.label, y.label);
            assert_eq!(x.sentences.len(), y.sentences.len());
            assert_eq!(x.sentences[0].tokens, y.sentences[0].tokens);
        }
    }

    #[test]
    fn vocab_covers_all_tokens() {
        let ds = Dataset::generate(&tiny());
        let vmax = ds.vocab.len();
        for b in ds.train.iter().chain(&ds.test) {
            for s in &b.sentences {
                assert!(s.tokens.iter().all(|&t| t < vmax));
            }
        }
    }

    #[test]
    fn long_tail_present_in_sentence_counts() {
        let ds = Dataset::generate(&tiny());
        let singles = ds.train.iter().filter(|b| b.sentences.len() <= 2).count();
        assert!(
            singles as f32 / ds.train.len() as f32 > 0.5,
            "expected most bags to have ≤2 sentences (long tail)"
        );
    }

    #[test]
    fn presets_have_paper_relation_counts() {
        assert_eq!(nyt_sim(0).world.n_relations, 53);
        assert_eq!(gds_sim(0).world.n_relations, 5);
        assert!(nyt_sim(0).sentence.noise_prob > gds_sim(0).sentence.noise_prob);
    }
}
