//! Distant-supervision sentence generation.
//!
//! Each knowledge-graph fact spawns a *bag* of sentences mentioning its
//! entity pair. A sentence either **expresses** the relation (it contains
//! trigger words of the relation's schema) or is **noise** (the entities
//! merely co-occur — the distant-supervision false-positive the paper's
//! attention machinery exists to down-weight). The per-sentence noise
//! probability is a dataset knob: NYT-sim is noisier than GDS-sim.

use crate::templates::{RelationSchema, GENERIC_WORDS, NOISE_CONNECTORS};
use crate::vocab::Vocab;
use crate::world::{EntityId, World};
use imre_tensor::TensorRng;

/// One tokenised training/test sentence with entity positions.
#[derive(Debug, Clone)]
pub struct EncodedSentence {
    /// Token ids (no padding; encoders pad/truncate as needed).
    pub tokens: Vec<usize>,
    /// Index of the head entity's token.
    pub head_pos: usize,
    /// Index of the tail entity's token.
    pub tail_pos: usize,
    /// Whether the generator made this sentence express the relation
    /// (ground-truth provenance; models never see this — it exists for
    /// noise-sensitivity experiments and tests).
    pub expresses_relation: bool,
}

/// Sentence-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SentenceGenConfig {
    /// Probability a generated sentence is noise (does not express the
    /// relation) even though distant supervision labels the bag with it.
    pub noise_prob: f32,
    /// Minimum sentence length in tokens.
    pub min_len: usize,
    /// Maximum sentence length in tokens.
    pub max_len: usize,
}

impl Default for SentenceGenConfig {
    fn default() -> Self {
        SentenceGenConfig {
            noise_prob: 0.3,
            min_len: 8,
            max_len: 24,
        }
    }
}

/// Generates one sentence for `(head, tail)` under `schema`.
///
/// If `schema` is `None` (an `NA` pair) or the noise coin fires, the sentence
/// is a co-occurrence-only noise sentence.
pub fn generate_sentence(
    world: &World,
    vocab: &mut Vocab,
    head: EntityId,
    tail: EntityId,
    schema: Option<&RelationSchema>,
    config: &SentenceGenConfig,
    rng: &mut TensorRng,
) -> EncodedSentence {
    let express = match schema {
        Some(s) if !s.triggers.is_empty() => !rng.bernoulli(config.noise_prob),
        _ => false,
    };
    let len = config.min_len + rng.below(config.max_len - config.min_len + 1);

    // Build a word sequence of `len` slots; place head/tail at random
    // distinct positions (ordering varies like real text), fill the rest
    // with generic words, then overwrite 1–2 slots near the entities with
    // trigger words when the sentence expresses the relation.
    let mut words: Vec<String> = (0..len)
        .map(|_| GENERIC_WORDS[rng.below(GENERIC_WORDS.len())].to_string())
        .collect();

    let hp = rng.below(len);
    let mut tp = rng.below(len);
    while tp == hp {
        tp = rng.below(len);
    }
    words[hp] = world.entities[head.0].name.clone();
    words[tp] = world.entities[tail.0].name.clone();

    if express {
        let schema = schema.expect("express implies schema");
        let n_triggers = 1 + rng.below(2.min(schema.triggers.len()));
        for _ in 0..n_triggers {
            let trig = &schema.triggers[rng.below(schema.triggers.len())];
            // place the trigger adjacent to an entity when space permits
            let anchor = if rng.bernoulli(0.5) { hp } else { tp };
            let slot = place_near(anchor, len, hp, tp, rng);
            if let Some(slot) = slot {
                words[slot] = trig.clone();
            }
        }
    } else {
        // noise sentences get a connector verb so they are lexically
        // distinguishable from relation-expressing ones
        if let Some(slot) = place_near(hp.min(tp) + (tp.max(hp) - tp.min(hp)) / 2, len, hp, tp, rng)
        {
            words[slot] = NOISE_CONNECTORS[rng.below(NOISE_CONNECTORS.len())].to_string();
        }
    }

    let tokens: Vec<usize> = words.iter().map(|w| vocab.intern(w)).collect();
    EncodedSentence {
        tokens,
        head_pos: hp,
        tail_pos: tp,
        expresses_relation: express,
    }
}

/// Finds a slot near `anchor` that is neither entity position.
fn place_near(
    anchor: usize,
    len: usize,
    hp: usize,
    tp: usize,
    rng: &mut TensorRng,
) -> Option<usize> {
    for _ in 0..8 {
        let offset = rng.below(5) as isize - 2;
        let slot = anchor as isize + offset;
        if slot >= 0 && (slot as usize) < len {
            let slot = slot as usize;
            if slot != hp && slot != tp {
                return Some(slot);
            }
        }
    }
    (0..len).find(|&s| s != hp && s != tp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn setup() -> (World, Vocab, TensorRng) {
        let w = World::generate(&WorldConfig {
            n_relations: 8,
            entities_per_cluster: 6,
            facts_per_relation: 10,
            cluster_reuse_prob: 0.4,
            seed: 5,
        });
        (w, Vocab::new(), TensorRng::seed(11))
    }

    #[test]
    fn entities_placed_at_reported_positions() {
        let (w, mut v, mut rng) = setup();
        let f = w.facts[0];
        let schema = w.relations[f.relation.0].clone();
        for _ in 0..50 {
            let s = generate_sentence(
                &w,
                &mut v,
                f.head,
                f.tail,
                Some(&schema),
                &SentenceGenConfig::default(),
                &mut rng,
            );
            assert_eq!(v.word(s.tokens[s.head_pos]), w.entities[f.head.0].name);
            assert_eq!(v.word(s.tokens[s.tail_pos]), w.entities[f.tail.0].name);
            assert_ne!(s.head_pos, s.tail_pos);
        }
    }

    #[test]
    fn length_bounds_respected() {
        let (w, mut v, mut rng) = setup();
        let f = w.facts[0];
        let cfg = SentenceGenConfig {
            noise_prob: 0.5,
            min_len: 6,
            max_len: 12,
        };
        for _ in 0..100 {
            let s = generate_sentence(&w, &mut v, f.head, f.tail, None, &cfg, &mut rng);
            assert!(s.tokens.len() >= 6 && s.tokens.len() <= 12);
        }
    }

    #[test]
    fn expressing_sentences_contain_a_trigger() {
        let (w, mut v, mut rng) = setup();
        let f = w.facts[0];
        let schema = w.relations[f.relation.0].clone();
        let cfg = SentenceGenConfig {
            noise_prob: 0.0,
            ..Default::default()
        };
        for _ in 0..30 {
            let s = generate_sentence(&w, &mut v, f.head, f.tail, Some(&schema), &cfg, &mut rng);
            assert!(s.expresses_relation);
            let has_trigger = s
                .tokens
                .iter()
                .any(|&t| schema.triggers.iter().any(|tr| tr == v.word(t)));
            assert!(has_trigger, "expressing sentence lacks trigger");
        }
    }

    #[test]
    fn noise_rate_matches_config() {
        let (w, mut v, mut rng) = setup();
        let f = w.facts[0];
        let schema = w.relations[f.relation.0].clone();
        let cfg = SentenceGenConfig {
            noise_prob: 0.4,
            ..Default::default()
        };
        let n = 2000;
        let noisy = (0..n)
            .filter(|_| {
                !generate_sentence(&w, &mut v, f.head, f.tail, Some(&schema), &cfg, &mut rng)
                    .expresses_relation
            })
            .count();
        let rate = noisy as f32 / n as f32;
        assert!((rate - 0.4).abs() < 0.05, "noise rate {rate}");
    }

    #[test]
    fn na_sentences_never_express() {
        let (w, mut v, mut rng) = setup();
        let (h, t) = w.sample_na_pair(&mut rng);
        for _ in 0..20 {
            let s = generate_sentence(
                &w,
                &mut v,
                h,
                t,
                None,
                &SentenceGenConfig::default(),
                &mut rng,
            );
            assert!(!s.expresses_relation);
        }
    }
}
