//! The synthetic world model: entities organised into semantic clusters,
//! typed relations, and the knowledge-graph facts that distant supervision
//! labels sentences against.
//!
//! This replaces the Freebase-aligned NYT/GDS ground truth the paper uses.
//! Two properties matter for the reproduction and are established here:
//!
//! 1. **Cluster structure** — semantically similar entities (all
//!    universities, all cities…) live in one cluster; a relation connects a
//!    head cluster to a tail cluster. Analogous pairs — (university, city)
//!    pairs under `located_in` — therefore share neighbourhood structure in
//!    any co-occurrence graph over this world, which is exactly the property
//!    the paper's implicit-mutual-relation component exploits.
//! 2. **Type signatures** — each relation constrains its arguments' coarse
//!    types, so the entity-type component has signal to learn.

use crate::templates::{build_relations, RelationId, RelationSchema};
use crate::types::TypeId;
use imre_tensor::TensorRng;
use std::collections::HashMap;

/// Identifier of an entity (index into [`World::entities`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub usize);

/// An entity with its name, coarse types and semantic cluster.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Unique surface form, used as a token in generated sentences.
    pub name: String,
    /// Coarse types (1–2 per entity; first is the cluster's type).
    pub types: Vec<TypeId>,
    /// Index of the semantic cluster this entity belongs to.
    pub cluster: usize,
}

/// A semantic cluster: a typed group of interchangeable-role entities.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The coarse type every member carries as its primary type.
    pub type_id: TypeId,
    /// Member entity ids.
    pub members: Vec<EntityId>,
}

/// A knowledge-graph fact `(head, relation, tail)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fact {
    /// Head entity.
    pub head: EntityId,
    /// Tail entity.
    pub tail: EntityId,
    /// Relation label (never `NA`).
    pub relation: RelationId,
}

/// Configuration for [`World::generate`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of relation labels including `NA`.
    pub n_relations: usize,
    /// Entities per newly created cluster.
    pub entities_per_cluster: usize,
    /// Facts sampled per non-`NA` relation.
    pub facts_per_relation: usize,
    /// Probability of reusing an existing same-typed cluster for a relation
    /// argument instead of creating a fresh one (creates realistic overlap).
    pub cluster_reuse_prob: f32,
    /// RNG seed; the whole world is a pure function of the config.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            n_relations: 53,
            entities_per_cluster: 14,
            facts_per_relation: 60,
            cluster_reuse_prob: 0.5,
            seed: 17,
        }
    }
}

/// The generated world: entities, clusters, relations and facts.
pub struct World {
    /// All entities; `EntityId` indexes here.
    pub entities: Vec<Entity>,
    /// All relation schemas; index 0 is `NA`.
    pub relations: Vec<RelationSchema>,
    /// Semantic clusters.
    pub clusters: Vec<Cluster>,
    /// All facts (non-`NA`).
    pub facts: Vec<Fact>,
    /// Per-relation `(head_cluster, tail_cluster)` assignment (index 0 = NA,
    /// unused). Needed to sample *hard* NA pairs.
    pub relation_clusters: Vec<(usize, usize)>,
    fact_map: HashMap<(usize, usize), RelationId>,
}

/// Curated entity-name pools keyed by coarse-type name. The first cluster of
/// each listed type draws from its pool so that the paper's case study
/// (Table V: nearest neighbours of *Seattle* / *University of Washington*)
/// reads naturally.
const NAME_POOLS: &[(&str, &[&str])] = &[
    (
        "education",
        &[
            "University_of_Washington",
            "Stanford_University",
            "Columbia_University",
            "University_of_Southern_California",
            "Harvard_University",
            "Ohio_State_University",
            "University_of_Michigan",
            "Northwestern_University",
            "University_of_Florida",
            "University_of_Kentucky",
            "Brigham_Young_University",
            "Yale_University",
            "Princeton_University",
            "Duke_University",
        ],
    ),
    (
        "location",
        &[
            "Seattle",
            "California",
            "Los_Angeles",
            "New_York_City",
            "Houston",
            "Dallas",
            "Texas",
            "Atlanta",
            "Cleveland",
            "Washington",
            "Chicago",
            "Boston",
            "Denver",
            "Miami",
        ],
    ),
    (
        "person",
        &[
            "Barack_Obama",
            "John_Roberts",
            "Maria_Garcia",
            "Wei_Chen",
            "Anna_Kowalski",
            "David_Miller",
            "Fatima_Hassan",
            "James_Wilson",
            "Elena_Petrova",
            "Carlos_Santos",
            "Linda_Johnson",
            "Ahmed_Khan",
            "Sophie_Martin",
            "Hiroshi_Tanaka",
        ],
    ),
    (
        "organization",
        &[
            "Acme_Corporation",
            "Globex_Industries",
            "Initech_Systems",
            "Umbrella_Holdings",
            "Stark_Enterprises",
            "Wayne_Industries",
            "Cyberdyne_Labs",
            "Tyrell_Group",
            "Wonka_Foods",
            "Oscorp_Technologies",
            "Hooli_Networks",
            "Pied_Piper_Software",
            "Vandelay_Imports",
            "Soylent_Nutrition",
        ],
    ),
];

impl World {
    /// Generates a world deterministically from the config.
    pub fn generate(config: &WorldConfig) -> World {
        let mut rng = TensorRng::seed(config.seed);
        let relations = build_relations(config.n_relations, &mut rng);

        let mut entities: Vec<Entity> = Vec::new();
        let mut clusters: Vec<Cluster> = Vec::new();
        // per-type count of created clusters, for name pools & reuse lookups
        let mut clusters_by_type: HashMap<TypeId, Vec<usize>> = HashMap::new();

        let cluster_for = |type_id: TypeId,
                           entities: &mut Vec<Entity>,
                           clusters: &mut Vec<Cluster>,
                           clusters_by_type: &mut HashMap<TypeId, Vec<usize>>,
                           rng: &mut TensorRng|
         -> usize {
            if let Some(existing) = clusters_by_type.get(&type_id) {
                if !existing.is_empty() && rng.bernoulli(config.cluster_reuse_prob) {
                    return existing[rng.below(existing.len())];
                }
            }
            let cluster_idx = clusters.len();
            let nth_of_type = clusters_by_type.get(&type_id).map_or(0, Vec::len);
            let pool: Option<&[&str]> = if nth_of_type == 0 {
                NAME_POOLS
                    .iter()
                    .find(|(t, _)| *t == type_id.name())
                    .map(|(_, p)| *p)
            } else {
                None
            };
            let mut members = Vec::with_capacity(config.entities_per_cluster);
            for i in 0..config.entities_per_cluster {
                let name = match pool.and_then(|p| p.get(i)) {
                    Some(curated) => (*curated).to_string(),
                    None => format!("{}_c{}_e{}", type_id.name(), cluster_idx, i),
                };
                let mut types = vec![type_id];
                if rng.bernoulli(0.2) {
                    let extra = TypeId(rng.below(crate::types::NUM_COARSE_TYPES));
                    if extra != type_id {
                        types.push(extra);
                    }
                }
                let eid = EntityId(entities.len());
                entities.push(Entity {
                    name,
                    types,
                    cluster: cluster_idx,
                });
                members.push(eid);
            }
            clusters.push(Cluster { type_id, members });
            clusters_by_type
                .entry(type_id)
                .or_default()
                .push(cluster_idx);
            cluster_idx
        };

        // Assign head/tail clusters per relation and sample facts.
        let mut facts = Vec::new();
        let mut fact_map: HashMap<(usize, usize), RelationId> = HashMap::new();
        let mut relation_clusters = vec![(0usize, 0usize); 1]; // slot 0 = NA
        for (ridx, schema) in relations.iter().enumerate().skip(1) {
            let hc = cluster_for(
                schema.head_type,
                &mut entities,
                &mut clusters,
                &mut clusters_by_type,
                &mut rng,
            );
            let tc = cluster_for(
                schema.tail_type,
                &mut entities,
                &mut clusters,
                &mut clusters_by_type,
                &mut rng,
            );
            relation_clusters.push((hc, tc));
            let heads = clusters[hc].members.clone();
            let tails = clusters[tc].members.clone();
            let mut attempts = 0;
            let mut sampled = 0;
            while sampled < config.facts_per_relation && attempts < config.facts_per_relation * 20 {
                attempts += 1;
                let h = heads[rng.below(heads.len())];
                let t = tails[rng.below(tails.len())];
                if h == t || fact_map.contains_key(&(h.0, t.0)) {
                    continue;
                }
                let rel = RelationId(ridx);
                fact_map.insert((h.0, t.0), rel);
                facts.push(Fact {
                    head: h,
                    tail: t,
                    relation: rel,
                });
                sampled += 1;
            }
        }

        World {
            entities,
            relations,
            clusters,
            facts,
            relation_clusters,
            fact_map,
        }
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of relation labels (including `NA`).
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The KG relation between two entities, if any (directional).
    pub fn relation_of(&self, head: EntityId, tail: EntityId) -> Option<RelationId> {
        self.fact_map.get(&(head.0, tail.0)).copied()
    }

    /// Looks an entity up by surface name.
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entities
            .iter()
            .position(|e| e.name == name)
            .map(EntityId)
    }

    /// Samples an entity pair with **no** KG fact (an `NA` pair), drawn
    /// uniformly over all entities (typically type-incompatible — an *easy*
    /// negative).
    ///
    /// # Panics
    /// If no `NA` pair can be found (the world is saturated: essentially
    /// every ordered pair is a fact). Such a world cannot support distant
    /// supervision and indicates a mis-sized [`WorldConfig`]; panicking
    /// with a clear message beats looping forever.
    pub fn sample_na_pair(&self, rng: &mut TensorRng) -> (EntityId, EntityId) {
        match self.try_sample_na_pair(rng) {
            Some(pair) => pair,
            None => panic!(
                "World::sample_na_pair: no NA pair exists ({} entities, {} facts) — \
                 reduce facts_per_relation or enlarge clusters",
                self.entities.len(),
                self.facts.len()
            ),
        }
    }

    /// Non-panicking variant of [`World::sample_na_pair`]: `None` when the
    /// world is saturated (essentially every ordered pair is a fact).
    pub fn try_sample_na_pair(&self, rng: &mut TensorRng) -> Option<(EntityId, EntityId)> {
        let n = self.entities.len();
        for _ in 0..20_000 {
            let h = EntityId(rng.below(n));
            let t = EntityId(rng.below(n));
            if h != t && self.relation_of(h, t).is_none() {
                return Some((h, t));
            }
        }
        // Rejection sampling failed; exhaustive scan before giving up.
        for h in 0..n {
            for t in 0..n {
                if h != t && self.relation_of(EntityId(h), EntityId(t)).is_none() {
                    return Some((EntityId(h), EntityId(t)));
                }
            }
        }
        None
    }

    /// Samples a **hard** `NA` pair: drawn from the head/tail clusters of a
    /// random relation, so its types (and neighbourhood structure) are fully
    /// compatible with that relation — there is just no fact. Real corpora
    /// are full of these (two co-mentioned same-type entities with no KG
    /// relation); they are what forces a model to actually read the text
    /// rather than trust the type/embedding prior.
    pub fn sample_hard_na_pair(&self, rng: &mut TensorRng) -> (EntityId, EntityId) {
        match self.try_sample_hard_na_pair(rng) {
            Some(pair) => pair,
            None => panic!(
                "World::sample_hard_na_pair: no NA pair exists ({} entities, {} facts)",
                self.entities.len(),
                self.facts.len()
            ),
        }
    }

    /// Non-panicking variant of [`World::sample_hard_na_pair`]; falls back
    /// to an easy negative when the relation clusters are saturated, and
    /// `None` when the whole world is.
    pub fn try_sample_hard_na_pair(&self, rng: &mut TensorRng) -> Option<(EntityId, EntityId)> {
        for _ in 0..200 {
            let ridx = 1 + rng.below(self.relations.len() - 1);
            let (hc, tc) = self.relation_clusters[ridx];
            let heads = &self.clusters[hc].members;
            let tails = &self.clusters[tc].members;
            let h = heads[rng.below(heads.len())];
            let t = tails[rng.below(tails.len())];
            if h != t && self.relation_of(h, t).is_none() {
                return Some((h, t));
            }
        }
        // clusters saturated with facts: fall back to an easy negative
        self.try_sample_na_pair(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::generate(&WorldConfig {
            n_relations: 10,
            entities_per_cluster: 8,
            facts_per_relation: 12,
            cluster_reuse_prob: 0.5,
            seed: 3,
        })
    }

    #[test]
    fn facts_respect_type_signatures() {
        let w = small_world();
        for f in &w.facts {
            let schema = &w.relations[f.relation.0];
            assert_eq!(
                w.entities[f.head.0].types[0], schema.head_type,
                "head type mismatch for {}",
                schema.name
            );
            assert_eq!(
                w.entities[f.tail.0].types[0], schema.tail_type,
                "tail type mismatch for {}",
                schema.name
            );
        }
    }

    #[test]
    fn facts_unique_per_pair() {
        let w = small_world();
        let mut pairs: Vec<(usize, usize)> = w.facts.iter().map(|f| (f.head.0, f.tail.0)).collect();
        let before = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), before);
    }

    #[test]
    fn no_self_facts() {
        let w = small_world();
        assert!(w.facts.iter().all(|f| f.head != f.tail));
    }

    #[test]
    fn relation_lookup_agrees_with_facts() {
        let w = small_world();
        for f in &w.facts {
            assert_eq!(w.relation_of(f.head, f.tail), Some(f.relation));
        }
    }

    #[test]
    fn na_pairs_have_no_fact() {
        let w = small_world();
        let mut rng = TensorRng::seed(9);
        for _ in 0..50 {
            let (h, t) = w.sample_na_pair(&mut rng);
            assert!(w.relation_of(h, t).is_none());
            assert_ne!(h, t);
        }
    }

    #[test]
    fn curated_names_present_in_full_world() {
        let w = World::generate(&WorldConfig::default());
        assert!(
            w.entity_by_name("Seattle").is_some(),
            "curated city names should exist"
        );
        assert!(w.entity_by_name("University_of_Washington").is_some());
    }

    #[test]
    fn entities_have_valid_clusters_and_types() {
        let w = small_world();
        for (i, e) in w.entities.iter().enumerate() {
            assert!(e.cluster < w.clusters.len());
            assert!(w.clusters[e.cluster].members.contains(&EntityId(i)));
            assert!(!e.types.is_empty() && e.types.len() <= 2);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.num_entities(), b.num_entities());
        assert_eq!(a.facts.len(), b.facts.len());
        for (x, y) in a.facts.iter().zip(&b.facts) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn entity_names_unique() {
        let w = World::generate(&WorldConfig::default());
        let mut names: Vec<&String> = w.entities.iter().map(|e| &e.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate entity names");
    }
}
