//! Coarse entity types.
//!
//! The paper uses the 38 first-level types of the FIGER hierarchy (Ling &
//! Weld 2012) via Freebase alignment. Freebase is unavailable offline, so we
//! carry the same 38 coarse types as a fixed table and assign them inside the
//! synthetic world model; relations constrain their argument types against
//! this table exactly as in the paper.

/// Identifier of a coarse entity type (index into [`COARSE_TYPES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub usize);

/// The 38 first-level FIGER types used by the paper's type component.
pub const COARSE_TYPES: [&str; 38] = [
    "person",
    "location",
    "organization",
    "art",
    "building",
    "event",
    "broadcast_program",
    "body_part",
    "chemistry",
    "computer",
    "disease",
    "education",
    "finance",
    "food",
    "game",
    "geography",
    "god",
    "government",
    "internet",
    "language",
    "law",
    "living_thing",
    "medicine",
    "metropolitan_transit",
    "military",
    "music",
    "news_agency",
    "newspaper",
    "play",
    "product",
    "rail",
    "religion",
    "software",
    "time",
    "title",
    "train",
    "transit",
    "written_work",
];

/// Number of coarse types (38, the first FIGER hierarchy level).
pub const NUM_COARSE_TYPES: usize = COARSE_TYPES.len();

impl TypeId {
    /// The type's human-readable name.
    pub fn name(self) -> &'static str {
        COARSE_TYPES[self.0]
    }

    /// Looks up a type by name.
    pub fn by_name(name: &str) -> Option<TypeId> {
        COARSE_TYPES.iter().position(|&n| n == name).map(TypeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_38_types() {
        assert_eq!(NUM_COARSE_TYPES, 38);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = COARSE_TYPES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 38);
    }

    #[test]
    fn lookup_roundtrip() {
        for i in 0..NUM_COARSE_TYPES {
            let t = TypeId(i);
            assert_eq!(TypeId::by_name(t.name()), Some(t));
        }
        assert_eq!(TypeId::by_name("not_a_type"), None);
    }
}
