//! # imre-corpus
//!
//! The data substrate for the `imre` reproduction of Kuang et al. (ICDE
//! 2020): a synthetic world model and the corpora derived from it.
//!
//! The paper trains on the NYT and GDS distant-supervision corpora and mines
//! its entity proximity graph from a Wikipedia dump; none are available in
//! this environment, so this crate generates statistical stand-ins from an
//! explicit world model (see `DESIGN.md` §1 for the substitution argument):
//!
//! * [`world`] — entities in typed semantic clusters, relation schemas with
//!   type signatures, and the KG facts distant supervision labels against.
//! * [`sentences`] — template-based sentence generation with controllable
//!   per-sentence label noise (the distant-supervision failure mode).
//! * [`dataset`] — bag-structured train/test corpora with Zipf-long-tailed
//!   per-pair sentence counts; presets [`dataset::nyt_sim`] (53 relations,
//!   noisy) and [`dataset::gds_sim`] (5 relations, cleaner, smaller).
//! * [`unlabeled`] — the co-occurrence table standing in for Wikipedia,
//!   with cluster-structured neighbourhoods the proximity graph preserves.
//! * [`stream`] — the streaming flavour of the above: timestamped sentence
//!   batches with batching-stable dedup, feeding `imre-stream`'s
//!   incremental proximity graph.
//! * [`types`] — the 38 coarse FIGER entity types the paper's type
//!   component embeds.
//! * [`stats`] — the Figure 1 histograms and Table II summaries.

pub mod dataset;
pub mod sentences;
pub mod stats;
pub mod stream;
pub mod templates;
pub mod types;
pub mod unlabeled;
pub mod vocab;
pub mod world;

pub use dataset::{gds_sim, nyt_sim, Bag, Dataset, DatasetConfig, Zipf};
pub use sentences::{EncodedSentence, SentenceGenConfig};
pub use stream::{
    count_events, synth_delta_text, DeltaBatch, EntityMention, LineDeltaSource, SentenceEvent,
    StableDedup, StreamError, StreamSource,
};
pub use templates::{RelationId, RelationSchema, NA};
pub use types::{TypeId, COARSE_TYPES, NUM_COARSE_TYPES};
pub use unlabeled::{generate_unlabeled, CoOccurrence, UnlabeledConfig};
pub use vocab::{Vocab, PAD, UNK};
pub use world::{Entity, EntityId, Fact, World, WorldConfig};
