//! Streaming sentence ingestion: timestamped batches of entity mentions.
//!
//! The offline pipeline freezes a corpus, counts co-occurrences once, and
//! builds the proximity graph in one shot. Production corpora instead arrive
//! as an append-only stream of sentences; this module defines the wire
//! format and the parsing/dedup layer that turns it into delta batches the
//! incremental graph in `imre-stream` can fold in.
//!
//! ## Delta line format
//!
//! One sentence observation per line, tab-separated:
//!
//! ```text
//! <timestamp> \t <entity>[:<type>,<type>...] \t <entity>[...] ...
//! ```
//!
//! * `timestamp` — a non-negative integer (e.g. unix seconds); informational
//!   ordering metadata, carried through to dedup fingerprints.
//! * `entity` — the surface name, exactly as it appears in a bundle's entity
//!   table. An optional `:`-suffixed comma list of coarse type ids (FIGER
//!   indices, see [`crate::types`]) accompanies first sight of a new entity;
//!   entities without one default to type `0` when admitted.
//! * Lines starting with `#` are comments; a **blank line is a batch
//!   boundary**. Batch boundaries carry no semantic weight — they only
//!   decide how much work is folded in per update tick, and the incremental
//!   build is pinned (by proptest) to be invariant to them.
//!
//! ## Batching-stable dedup
//!
//! Re-delivered sentences (at-least-once sources, replayed fifos) must not
//! inflate co-occurrence counts, and — the subtle part — deduplication must
//! not depend on how the stream was cut into batches. [`StableDedup`]
//! therefore keeps a fingerprint set used **only for membership tests**
//! (never iterated, so no hash-order leak — the same bug class as the PR 2
//! HashMap edge-ordering fix) and always emits survivors in arrival order.
//! Any batching of the same event sequence yields the same surviving
//! sequence, so streamed and offline corpora featurize identically.

use crate::unlabeled::CoOccurrence;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{self, BufRead};

/// One entity mention inside a sentence event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityMention {
    /// Surface name, matching the bundle entity table.
    pub name: String,
    /// Coarse type ids accompanying the mention (may be empty; new entities
    /// default to type `0` on admission).
    pub types: Vec<usize>,
}

/// One timestamped sentence observation: the entities mentioned together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentenceEvent {
    /// Source timestamp (informational; part of the dedup fingerprint).
    pub ts: u64,
    /// Entities co-occurring in the sentence, in mention order.
    pub entities: Vec<EntityMention>,
}

/// A batch of sentence events delimited by a blank line in the stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    /// Events in arrival order.
    pub events: Vec<SentenceEvent>,
}

/// Typed errors for malformed delta input.
#[derive(Debug)]
pub enum StreamError {
    /// Underlying reader failure.
    Io(io::Error),
    /// The first field did not parse as a non-negative integer timestamp.
    MalformedTimestamp {
        /// 1-based line number in the stream.
        line: u64,
        /// The offending field.
        text: String,
    },
    /// A `:`-suffixed type list contained a non-integer.
    MalformedType {
        /// 1-based line number in the stream.
        line: u64,
        /// The offending field.
        text: String,
    },
    /// An entity field was empty (e.g. consecutive tabs).
    EmptyEntityName {
        /// 1-based line number in the stream.
        line: u64,
    },
    /// A data line carried a timestamp but no entities.
    NoEntities {
        /// 1-based line number in the stream.
        line: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream io error: {e}"),
            StreamError::MalformedTimestamp { line, text } => {
                write!(f, "line {line}: malformed timestamp {text:?}")
            }
            StreamError::MalformedType { line, text } => {
                write!(f, "line {line}: malformed type list {text:?}")
            }
            StreamError::EmptyEntityName { line } => {
                write!(f, "line {line}: empty entity name")
            }
            StreamError::NoEntities { line } => {
                write!(f, "line {line}: sentence event with no entities")
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// A source of timestamped sentence batches.
///
/// Implementations block until a batch is available (a fifo that nobody has
/// written to yet simply stalls the updater thread) and return `Ok(None)`
/// at end of stream.
pub trait StreamSource {
    /// The next delta batch, or `Ok(None)` when the stream is exhausted.
    fn next_batch(&mut self) -> Result<Option<DeltaBatch>, StreamError>;
}

/// [`StreamSource`] over the line-oriented delta format, reading from any
/// [`BufRead`] — a file, a fifo, or an in-memory cursor in tests.
pub struct LineDeltaSource<R: BufRead> {
    reader: R,
    line_no: u64,
    done: bool,
}

impl<R: BufRead> LineDeltaSource<R> {
    /// Wraps a reader positioned at the start of a delta stream.
    pub fn new(reader: R) -> Self {
        LineDeltaSource {
            reader,
            line_no: 0,
            done: false,
        }
    }
}

impl LineDeltaSource<io::BufReader<std::fs::File>> {
    /// Opens a delta file (or fifo) for streaming.
    pub fn open(path: &std::path::Path) -> io::Result<Self> {
        Ok(Self::new(io::BufReader::new(std::fs::File::open(path)?)))
    }
}

impl<R: BufRead> StreamSource for LineDeltaSource<R> {
    fn next_batch(&mut self) -> Result<Option<DeltaBatch>, StreamError> {
        if self.done {
            return Ok(None);
        }
        let mut batch = DeltaBatch::default();
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                self.done = true;
                break;
            }
            self.line_no += 1;
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.starts_with('#') {
                continue;
            }
            if trimmed.trim().is_empty() {
                if batch.events.is_empty() {
                    continue; // consecutive boundaries delimit nothing
                }
                break;
            }
            batch.events.push(parse_event(trimmed, self.line_no)?);
        }
        if batch.events.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }
}

/// Parses one data line (`ts \t ent[:types] \t ...`).
fn parse_event(line: &str, line_no: u64) -> Result<SentenceEvent, StreamError> {
    let mut fields = line.split('\t');
    let ts_field = fields.next().unwrap_or("").trim();
    let ts = ts_field
        .parse::<u64>()
        .map_err(|_| StreamError::MalformedTimestamp {
            line: line_no,
            text: ts_field.to_string(),
        })?;
    let mut entities = Vec::new();
    for field in fields {
        let field = field.trim();
        if field.is_empty() {
            return Err(StreamError::EmptyEntityName { line: line_no });
        }
        let (name, types) = match field.split_once(':') {
            Some((name, list)) => {
                let mut types = Vec::new();
                for t in list.split(',') {
                    let t = t.trim();
                    types.push(t.parse::<usize>().map_err(|_| StreamError::MalformedType {
                        line: line_no,
                        text: field.to_string(),
                    })?);
                }
                (name, types)
            }
            None => (field, Vec::new()),
        };
        if name.is_empty() {
            return Err(StreamError::EmptyEntityName { line: line_no });
        }
        entities.push(EntityMention {
            name: name.to_string(),
            types,
        });
    }
    if entities.is_empty() {
        return Err(StreamError::NoEntities { line: line_no });
    }
    Ok(SentenceEvent { ts, entities })
}

/// Batching-stable sentence deduplication.
///
/// Membership is a 64-bit FNV-1a fingerprint over the event's canonical
/// serialization; the set is never iterated, and survivors always come out
/// in arrival order, so the surviving sequence is a pure function of the
/// event sequence — independent of batch boundaries and of `HashSet`
/// iteration order.
#[derive(Debug, Default)]
pub struct StableDedup {
    seen: HashSet<u64>,
}

impl StableDedup {
    /// An empty dedup window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct events seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no event has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Records an event; returns `true` if it was fresh (first delivery).
    pub fn insert(&mut self, event: &SentenceEvent) -> bool {
        self.seen.insert(fingerprint(event))
    }

    /// Filters a batch down to first-delivery events, preserving arrival
    /// order.
    pub fn retain_fresh(&mut self, batch: DeltaBatch) -> Vec<SentenceEvent> {
        batch
            .events
            .into_iter()
            .filter(|ev| self.insert(ev))
            .collect()
    }
}

/// FNV-1a 64 over the canonical event serialization (`ts`, then each
/// mention's name and type list, all length-prefixed by separators that
/// cannot appear in the fields).
fn fingerprint(event: &SentenceEvent) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&event.ts.to_le_bytes());
    for m in &event.entities {
        eat(&[0x09]); // field separator
        eat(m.name.as_bytes());
        for &t in &m.types {
            eat(&[0x3a]); // type separator
            eat(&(t as u64).to_le_bytes());
        }
    }
    h
}

/// Counts the co-occurrence pairs expressed by a slice of events, given a
/// name→id resolver. Every unordered pair of distinct entities in one
/// sentence co-occurs once; self-pairs (an entity mentioned twice) are
/// dropped by [`CoOccurrence::add`].
pub fn count_events<F>(events: &[SentenceEvent], mut resolve: F) -> CoOccurrence
where
    F: FnMut(&EntityMention) -> usize,
{
    let mut co = CoOccurrence::new();
    for ev in events {
        let ids: Vec<usize> = ev.entities.iter().map(&mut resolve).collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                co.add(ids[i], ids[j], 1);
            }
        }
    }
    co
}

/// Deterministic synthetic delta stream for tests, benches, and CI.
///
/// Generates `batches × events_per_batch` sentence events over `names`
/// (2–4 mentions each, SplitMix64-derived from `seed`), with every seventh
/// event an exact duplicate of its predecessor to exercise dedup. Each new
/// entity's first mention carries a type annotation. Output is a complete
/// delta document with blank-line batch boundaries.
pub fn synth_delta_text(
    names: &[String],
    batches: usize,
    events_per_batch: usize,
    seed: u64,
) -> String {
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    let mut out = String::new();
    out.push_str("# synthetic delta stream\n");
    let mut introduced: HashMap<usize, bool> = HashMap::new();
    let mut ts = 1_700_000_000u64;
    let mut prev_line: Option<String> = None;
    let mut draw = 0u64;
    for b in 0..batches {
        if b > 0 {
            out.push('\n');
        }
        for e in 0..events_per_batch {
            ts += 1;
            if e > 0 && e % 7 == 0 {
                if let Some(prev) = &prev_line {
                    out.push_str(prev);
                    out.push('\n');
                    continue;
                }
            }
            let k = (2 + (mix(seed ^ draw) % 3) as usize).min(names.len());
            draw += 1;
            let mut line = ts.to_string();
            let mut used = Vec::new();
            while used.len() < k {
                let idx = (mix(seed ^ 0x746f_6b65_6e73 ^ draw) % names.len() as u64) as usize;
                draw += 1;
                if used.contains(&idx) {
                    continue;
                }
                used.push(idx);
                line.push('\t');
                line.push_str(&names[idx]);
                if !introduced.get(&idx).copied().unwrap_or(false) {
                    introduced.insert(idx, true);
                    line.push_str(&format!(":{}", idx % crate::types::NUM_COARSE_TYPES));
                }
            }
            out.push_str(&line);
            out.push('\n');
            prev_line = Some(line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn source(text: &str) -> LineDeltaSource<Cursor<&[u8]>> {
        LineDeltaSource::new(Cursor::new(text.as_bytes()))
    }

    fn drain(text: &str) -> Vec<DeltaBatch> {
        let mut src = source(text);
        let mut out = Vec::new();
        while let Some(b) = src.next_batch().unwrap() {
            out.push(b);
        }
        out
    }

    #[test]
    fn parses_batches_comments_and_types() {
        let text = "# header\n10\ta:1,3\tb\n11\tb\tc:2\n\n12\ta\tc\n";
        let batches = drain(text);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].events.len(), 2);
        assert_eq!(batches[1].events.len(), 1);
        let first = &batches[0].events[0];
        assert_eq!(first.ts, 10);
        assert_eq!(first.entities[0].name, "a");
        assert_eq!(first.entities[0].types, vec![1, 3]);
        assert_eq!(first.entities[1].types, Vec::<usize>::new());
    }

    #[test]
    fn consecutive_boundaries_and_trailing_blank_are_harmless() {
        let text = "\n\n10\ta\tb\n\n\n\n11\tb\tc\n\n";
        let batches = drain(text);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].events.len(), 1);
        assert_eq!(batches[1].events.len(), 1);
    }

    #[test]
    fn malformed_lines_yield_typed_errors() {
        let mut s = source("xyz\ta\tb\n");
        assert!(matches!(
            s.next_batch(),
            Err(StreamError::MalformedTimestamp { line: 1, .. })
        ));
        let mut s = source("10\ta:one\n");
        assert!(matches!(
            s.next_batch(),
            Err(StreamError::MalformedType { line: 1, .. })
        ));
        let mut s = source("10\t\tb\n");
        assert!(matches!(
            s.next_batch(),
            Err(StreamError::EmptyEntityName { line: 1 })
        ));
        let mut s = source("10\n");
        assert!(matches!(
            s.next_batch(),
            Err(StreamError::NoEntities { line: 1 })
        ));
    }

    #[test]
    fn dedup_is_invariant_to_batching() {
        let names: Vec<String> = (0..6).map(|i| format!("e{i}")).collect();
        let text = synth_delta_text(&names, 3, 12, 9);
        // one big batch vs the authored 3-batch split
        let merged = text.replace("\n\n", "\n");
        let events_of = |t: &str| {
            let mut dedup = StableDedup::new();
            drain(t)
                .into_iter()
                .flat_map(|b| dedup.retain_fresh(b))
                .collect::<Vec<_>>()
        };
        let a = events_of(&text);
        let b = events_of(&merged);
        assert_eq!(a, b);
        // the generator plants duplicates, so dedup must have dropped some
        assert!(
            a.len() < 3 * 12,
            "expected planted duplicates to be dropped"
        );
    }

    #[test]
    fn dedup_drops_redelivered_events_across_batches() {
        let text = "10\ta\tb\n\n10\ta\tb\n11\tb\tc\n";
        let mut dedup = StableDedup::new();
        let batches = drain(text);
        let first = dedup.retain_fresh(batches[0].clone());
        let second = dedup.retain_fresh(batches[1].clone());
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].ts, 11);
    }

    #[test]
    fn fingerprint_distinguishes_types_and_timestamps() {
        let base = SentenceEvent {
            ts: 5,
            entities: vec![EntityMention {
                name: "a".into(),
                types: vec![1],
            }],
        };
        let mut other_ts = base.clone();
        other_ts.ts = 6;
        let mut other_types = base.clone();
        other_types.entities[0].types = vec![2];
        assert_ne!(fingerprint(&base), fingerprint(&other_ts));
        assert_ne!(fingerprint(&base), fingerprint(&other_types));
        assert_eq!(fingerprint(&base), fingerprint(&base.clone()));
    }

    #[test]
    fn count_events_counts_all_pairs_once() {
        let ev = SentenceEvent {
            ts: 1,
            entities: ["x", "y", "z"]
                .iter()
                .map(|n| EntityMention {
                    name: n.to_string(),
                    types: vec![],
                })
                .collect(),
        };
        let co = count_events(&[ev], |m| match m.name.as_str() {
            "x" => 0,
            "y" => 1,
            _ => 2,
        });
        assert_eq!(co.count(0, 1), 1);
        assert_eq!(co.count(0, 2), 1);
        assert_eq!(co.count(1, 2), 1);
        assert_eq!(co.len(), 3);
    }

    #[test]
    fn merge_cooccurrence_sums_pairwise() {
        let mut a = CoOccurrence::new();
        a.add(0, 1, 2);
        a.add(1, 2, 1);
        let mut b = CoOccurrence::new();
        b.add(1, 0, 3);
        b.add(2, 3, 4);
        a.merge(&b);
        assert_eq!(a.count(0, 1), 5);
        assert_eq!(a.count(1, 2), 1);
        assert_eq!(a.count(2, 3), 4);
    }

    #[test]
    fn synth_stream_is_deterministic_and_parseable() {
        let names: Vec<String> = (0..5).map(|i| format!("n{i}")).collect();
        let a = synth_delta_text(&names, 3, 8, 42);
        let b = synth_delta_text(&names, 3, 8, 42);
        assert_eq!(a, b);
        let batches = drain(&a);
        assert_eq!(batches.len(), 3);
        for batch in &batches {
            assert_eq!(batch.events.len(), 8);
            for ev in &batch.events {
                assert!(ev.entities.len() >= 2);
            }
        }
    }
}
