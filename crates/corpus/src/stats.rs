//! Dataset statistics: the frequency histogram of Figure 1 and the summary
//! numbers of Table II.

use crate::dataset::{Bag, Dataset};
use crate::unlabeled::CoOccurrence;

/// A labelled frequency band for histograms, e.g. `1–5`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Band {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Inclusive upper bound (`usize::MAX` = open-ended).
    pub hi: usize,
}

impl Band {
    /// Formats the band the way the paper's Figure 1 axis does.
    pub fn label(&self) -> String {
        if self.hi == usize::MAX {
            format!("{}+", self.lo)
        } else {
            format!("{}-{}", self.lo, self.hi)
        }
    }

    /// Whether `v` falls in the band.
    pub fn contains(&self, v: usize) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// The frequency bands used by Figure 1.
pub fn fig1_bands() -> Vec<Band> {
    vec![
        Band { lo: 1, hi: 5 },
        Band { lo: 6, hi: 10 },
        Band { lo: 11, hi: 20 },
        Band { lo: 21, hi: 50 },
        Band { lo: 51, hi: 100 },
        Band {
            lo: 101,
            hi: usize::MAX,
        },
    ]
}

/// Counts entity pairs per sentence-count band (Figure 1): how many pairs
/// have `1–5`, `6–10`, … training sentences.
pub fn pair_frequency_histogram(bags: &[Bag], bands: &[Band]) -> Vec<(String, usize)> {
    bands
        .iter()
        .map(|band| {
            let count = bags
                .iter()
                .filter(|b| band.contains(b.sentences.len()))
                .count();
            (band.label(), count)
        })
        .collect()
}

/// Counts entity pairs per *unlabeled-corpus co-occurrence* band.
pub fn cooccurrence_histogram(
    bags: &[Bag],
    co: &CoOccurrence,
    bands: &[Band],
) -> Vec<(String, usize)> {
    bands
        .iter()
        .map(|band| {
            let count = bags
                .iter()
                .filter(|b| band.contains(co.count(b.head.0, b.tail.0) as usize))
                .count();
            (band.label(), count)
        })
        .collect()
}

/// The Table II summary row for one dataset.
#[derive(Debug, Clone)]
pub struct DatasetSummary {
    /// Dataset display name.
    pub name: String,
    /// Number of relation labels (including `NA`).
    pub num_relations: usize,
    /// Training sentences.
    pub train_sentences: usize,
    /// Training entity pairs (bags).
    pub train_pairs: usize,
    /// Test sentences.
    pub test_sentences: usize,
    /// Test entity pairs (bags).
    pub test_pairs: usize,
}

/// Computes the Table II row for a dataset.
pub fn summarize(ds: &Dataset) -> DatasetSummary {
    DatasetSummary {
        name: ds.name.clone(),
        num_relations: ds.num_relations(),
        train_sentences: Dataset::sentence_count(&ds.train),
        train_pairs: ds.train.len(),
        test_sentences: Dataset::sentence_count(&ds.test),
        test_pairs: ds.test.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};
    use crate::sentences::SentenceGenConfig;
    use crate::world::WorldConfig;

    fn ds() -> Dataset {
        Dataset::generate(&DatasetConfig {
            name: "t".into(),
            world: WorldConfig {
                n_relations: 5,
                entities_per_cluster: 8,
                facts_per_relation: 15,
                cluster_reuse_prob: 0.4,
                seed: 1,
            },
            sentence: SentenceGenConfig::default(),
            train_fraction: 0.7,
            na_train: 20,
            na_test: 10,
            na_hard_fraction: 0.5,
            zipf_alpha: 1.8,
            max_sentences_per_bag: 30,
            seed: 2,
        })
    }

    #[test]
    fn band_labels() {
        assert_eq!(Band { lo: 1, hi: 5 }.label(), "1-5");
        assert_eq!(
            Band {
                lo: 101,
                hi: usize::MAX
            }
            .label(),
            "101+"
        );
    }

    #[test]
    fn histogram_partitions_all_bags() {
        let d = ds();
        let hist = pair_frequency_histogram(&d.train, &fig1_bands());
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, d.train.len(), "bands must partition bag counts");
    }

    #[test]
    fn histogram_is_long_tailed() {
        let d = ds();
        let hist = pair_frequency_histogram(&d.train, &fig1_bands());
        // The 1-5 band dominates, as in the paper's Figure 1.
        assert!(hist[0].1 > hist[1].1, "{:?}", hist);
        assert!(hist[0].1 as f32 / d.train.len() as f32 > 0.6);
    }

    #[test]
    fn summary_counts_consistent() {
        let d = ds();
        let s = summarize(&d);
        assert_eq!(s.train_pairs, d.train.len());
        assert_eq!(s.test_pairs, d.test.len());
        assert_eq!(s.num_relations, 5);
        assert!(
            s.train_sentences >= s.train_pairs,
            "at least one sentence per bag"
        );
    }

    #[test]
    fn cooccurrence_histogram_counts_uncovered_pairs_in_no_band() {
        use crate::unlabeled::CoOccurrence;
        let d = ds();
        let co = CoOccurrence::new(); // empty: every pair has count 0
        let hist = cooccurrence_histogram(&d.train, &co, &fig1_bands());
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 0, "count 0 falls outside the 1+ bands");
    }
}
