//! Token vocabulary: string ↔ id interning with reserved special tokens.

use std::collections::HashMap;

/// Reserved padding token id.
pub const PAD: usize = 0;
/// Reserved unknown-word token id.
pub const UNK: usize = 1;

/// A token vocabulary. Ids are dense; 0 and 1 are reserved for `<pad>` and
/// `<unk>`. Entity surface forms are interned like any other word — the
/// relation extractors see entity mentions as tokens, so infrequent entities
/// get poorly-trained word embeddings (the paper's core motivation for the
/// implicit-mutual-relation component).
#[derive(Debug, Clone)]
pub struct Vocab {
    words: Vec<String>,
    index: HashMap<String, usize>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// Creates a vocabulary holding only the special tokens.
    pub fn new() -> Self {
        let mut v = Vocab {
            words: Vec::new(),
            index: HashMap::new(),
        };
        let pad = v.intern("<pad>");
        let unk = v.intern("<unk>");
        debug_assert_eq!(pad, PAD);
        debug_assert_eq!(unk, UNK);
        v
    }

    /// Returns the id of `word`, adding it if missing.
    pub fn intern(&mut self, word: &str) -> usize {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = self.words.len();
        self.words.push(word.to_string());
        self.index.insert(word.to_string(), id);
        id
    }

    /// Looks up a word id; `None` if never interned.
    pub fn get(&self, word: &str) -> Option<usize> {
        self.index.get(word).copied()
    }

    /// Looks up a word id, falling back to [`UNK`].
    pub fn get_or_unk(&self, word: &str) -> usize {
        self.get(word).unwrap_or(UNK)
    }

    /// The surface form for an id.
    ///
    /// # Panics
    /// If `id` is out of range.
    pub fn word(&self, id: usize) -> &str {
        &self.words[id]
    }

    /// Number of tokens (including the two specials).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether only the special tokens exist.
    pub fn is_empty(&self) -> bool {
        self.words.len() <= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_reserved() {
        let v = Vocab::new();
        assert_eq!(v.word(PAD), "<pad>");
        assert_eq!(v.word(UNK), "<unk>");
        assert_eq!(v.len(), 2);
        assert!(v.is_empty());
    }

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("hello");
        let b = v.intern("hello");
        assert_eq!(a, b);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn lookup_and_fallback() {
        let mut v = Vocab::new();
        let id = v.intern("word");
        assert_eq!(v.get("word"), Some(id));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get_or_unk("missing"), UNK);
        assert_eq!(v.word(id), "word");
    }

    #[test]
    fn ids_dense_and_ordered() {
        let mut v = Vocab::new();
        let ids: Vec<usize> = ["a", "b", "c"].iter().map(|w| v.intern(w)).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }
}
