//! The synthetic **unlabeled corpus**: entity co-occurrence counts standing
//! in for the Wikipedia dump the paper mines.
//!
//! The paper's proximity graph consumes only one statistic from Wikipedia —
//! how often two entities appear in the same sentence. We generate those
//! counts directly from the world model with three ingredients:
//!
//! 1. **Fact pairs co-occur** (entities in a real-world relation are
//!    mentioned together), with Zipf-distributed counts so some pairs are
//!    barely covered — feeding the paper's Fig. 6 frequency-quantile study.
//! 2. **Same-cluster entities share neighbours**: each entity co-occurs with
//!    random members of its own cluster. This gives semantically similar
//!    entities similar graph neighbourhoods, which is what LINE's
//!    second-order proximity turns into nearby embeddings.
//! 3. **Relation-scoped cross-cluster smearing**: a head entity also
//!    co-occurs (weakly) with *other* members of its partner's cluster —
//!    e.g. a university is mentioned with several cities — mirroring the
//!    diffuse co-occurrence structure of a real encyclopedia.
//!
//! A uniform random-noise floor keeps the graph from being block-diagonal.

use crate::dataset::Zipf;
use crate::world::World;
use imre_tensor::TensorRng;
use std::collections::HashMap;

/// Undirected co-occurrence counts over entities.
///
/// Keys are normalised to `(min, max)`.
#[derive(Debug, Default, Clone)]
pub struct CoOccurrence {
    counts: HashMap<(usize, usize), u32>,
}

impl CoOccurrence {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(a: usize, b: usize) -> (usize, usize) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Adds `n` co-occurrence events between entities `a` and `b`.
    ///
    /// Self-pairs are ignored (an entity does not co-occur with itself).
    pub fn add(&mut self, a: usize, b: usize, n: u32) {
        if a == b {
            return;
        }
        *self.counts.entry(Self::key(a, b)).or_insert(0) += n;
    }

    /// The count for a pair (0 if never seen).
    pub fn count(&self, a: usize, b: usize) -> u32 {
        self.counts.get(&Self::key(a, b)).copied().unwrap_or(0)
    }

    /// Number of distinct co-occurring pairs.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `((a, b), count)` with `a < b`.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &u32)> {
        self.counts.iter()
    }

    /// The maximum count over all pairs (0 if empty).
    pub fn max_count(&self) -> u32 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Folds another table into this one, summing per-pair counts.
    ///
    /// Order-independent: both tables hold canonical keys and addition
    /// commutes, so `a.merge(&b)` equals `b.merge(&a)` pair-for-pair — the
    /// streaming path relies on this to fold delta batches in arrival order
    /// without caring how the corpus was partitioned.
    pub fn merge(&mut self, other: &CoOccurrence) {
        for (&k, &c) in &other.counts {
            *self.counts.entry(k).or_insert(0) += c;
        }
    }
}

/// Configuration for [`generate_unlabeled`].
#[derive(Debug, Clone)]
pub struct UnlabeledConfig {
    /// Fraction of fact pairs that appear in the unlabeled corpus at all.
    pub fact_coverage: f32,
    /// Zipf cap for per-fact-pair event counts.
    pub fact_events_max: usize,
    /// Zipf exponent for per-fact-pair event counts.
    pub fact_events_alpha: f64,
    /// Number of same-cluster co-occurrence partners per entity.
    pub intra_cluster_partners: usize,
    /// Events per intra-cluster partner edge.
    pub intra_cluster_events: u32,
    /// Cross-cluster smear partners per fact.
    pub smear_partners: usize,
    /// Events per smear edge.
    pub smear_events: u32,
    /// Uniformly random noise pairs.
    pub noise_pairs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UnlabeledConfig {
    fn default() -> Self {
        UnlabeledConfig {
            fact_coverage: 0.85,
            fact_events_max: 120,
            fact_events_alpha: 1.4,
            intra_cluster_partners: 5,
            intra_cluster_events: 6,
            smear_partners: 3,
            smear_events: 2,
            noise_pairs: 2_000,
            seed: 23,
        }
    }
}

/// Generates the unlabeled-corpus co-occurrence table for a world.
pub fn generate_unlabeled(world: &World, config: &UnlabeledConfig) -> CoOccurrence {
    let mut rng = TensorRng::seed(config.seed);
    let mut co = CoOccurrence::new();
    let zipf = Zipf::new(config.fact_events_max, config.fact_events_alpha);

    // (1) fact pairs co-occur with long-tailed counts
    for f in &world.facts {
        if !rng.bernoulli(config.fact_coverage) {
            continue;
        }
        let events = zipf.sample(&mut rng) as u32;
        co.add(f.head.0, f.tail.0, events);
        // (3) smear: the head also co-occurs with other members of the
        // tail's cluster (and vice versa), weakly
        let tail_cluster = &world.clusters[world.entities[f.tail.0].cluster];
        for _ in 0..config.smear_partners {
            let other = tail_cluster.members[rng.below(tail_cluster.members.len())];
            co.add(f.head.0, other.0, config.smear_events);
        }
        let head_cluster = &world.clusters[world.entities[f.head.0].cluster];
        for _ in 0..config.smear_partners {
            let other = head_cluster.members[rng.below(head_cluster.members.len())];
            co.add(other.0, f.tail.0, config.smear_events);
        }
    }

    // (2) same-cluster entities share neighbourhoods
    for cluster in &world.clusters {
        for &member in &cluster.members {
            for _ in 0..config.intra_cluster_partners {
                let partner = cluster.members[rng.below(cluster.members.len())];
                co.add(member.0, partner.0, config.intra_cluster_events);
            }
        }
    }

    // noise floor
    let n = world.num_entities();
    for _ in 0..config.noise_pairs {
        let a = rng.below(n);
        let b = rng.below(n);
        co.add(a, b, 1);
    }

    co
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn world() -> World {
        World::generate(&WorldConfig {
            n_relations: 8,
            entities_per_cluster: 10,
            facts_per_relation: 20,
            cluster_reuse_prob: 0.4,
            seed: 6,
        })
    }

    #[test]
    fn symmetric_and_no_self_pairs() {
        let mut co = CoOccurrence::new();
        co.add(3, 1, 5);
        co.add(1, 3, 2);
        co.add(2, 2, 9);
        assert_eq!(co.count(1, 3), 7);
        assert_eq!(co.count(3, 1), 7);
        assert_eq!(co.count(2, 2), 0);
        assert_eq!(co.len(), 1);
    }

    #[test]
    fn covered_fact_pairs_have_counts() {
        let w = world();
        let cfg = UnlabeledConfig {
            fact_coverage: 1.0,
            ..Default::default()
        };
        let co = generate_unlabeled(&w, &cfg);
        for f in &w.facts {
            assert!(
                co.count(f.head.0, f.tail.0) > 0,
                "fact pair missing from unlabeled corpus"
            );
        }
    }

    #[test]
    fn coverage_fraction_respected() {
        let w = world();
        let cfg = UnlabeledConfig {
            fact_coverage: 0.5,
            smear_partners: 0,
            intra_cluster_partners: 0,
            noise_pairs: 0,
            ..Default::default()
        };
        let co = generate_unlabeled(&w, &cfg);
        let covered = w
            .facts
            .iter()
            .filter(|f| co.count(f.head.0, f.tail.0) > 0)
            .count();
        let frac = covered as f32 / w.facts.len() as f32;
        assert!((frac - 0.5).abs() < 0.15, "coverage {frac}");
    }

    #[test]
    fn same_cluster_entities_share_neighbours() {
        let w = world();
        let co = generate_unlabeled(&w, &UnlabeledConfig::default());
        // pick a cluster with several members and check two members have at
        // least one common neighbour
        let cluster = w
            .clusters
            .iter()
            .find(|c| c.members.len() >= 3)
            .expect("cluster");
        let a = cluster.members[0].0;
        let b = cluster.members[1].0;
        let common = (0..w.num_entities())
            .filter(|&e| e != a && e != b && co.count(a, e) > 0 && co.count(b, e) > 0)
            .count();
        assert!(common > 0, "same-cluster members share no neighbours");
    }

    #[test]
    fn deterministic_under_seed() {
        let w = world();
        let a = generate_unlabeled(&w, &UnlabeledConfig::default());
        let b = generate_unlabeled(&w, &UnlabeledConfig::default());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.max_count(), b.max_count());
    }

    #[test]
    fn max_count_tracks_additions() {
        let mut co = CoOccurrence::new();
        assert_eq!(co.max_count(), 0);
        co.add(0, 1, 3);
        co.add(1, 2, 10);
        assert_eq!(co.max_count(), 10);
    }
}
