//! Property-based tests over the corpus generator: for arbitrary (small)
//! configurations, the structural invariants of worlds and datasets hold.

use imre_corpus::{Dataset, DatasetConfig, SentenceGenConfig, World, WorldConfig, Zipf, NA};
use imre_tensor::TensorRng;
use proptest::prelude::*;

fn world_config() -> impl Strategy<Value = WorldConfig> {
    (2usize..10, 4usize..10, 5usize..25, 0.0f32..0.8, 0u64..500).prop_map(
        |(n_relations, epc, fpr, reuse, seed)| WorldConfig {
            n_relations,
            entities_per_cluster: epc,
            facts_per_relation: fpr,
            cluster_reuse_prob: reuse,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn world_facts_always_type_consistent(cfg in world_config()) {
        let w = World::generate(&cfg);
        for f in &w.facts {
            let schema = &w.relations[f.relation.0];
            prop_assert_eq!(w.entities[f.head.0].types[0], schema.head_type);
            prop_assert_eq!(w.entities[f.tail.0].types[0], schema.tail_type);
            prop_assert_ne!(f.head, f.tail);
        }
    }

    #[test]
    fn world_cluster_membership_consistent(cfg in world_config()) {
        let w = World::generate(&cfg);
        for (c_idx, cluster) in w.clusters.iter().enumerate() {
            for &m in &cluster.members {
                prop_assert_eq!(w.entities[m.0].cluster, c_idx);
                prop_assert_eq!(w.entities[m.0].types[0], cluster.type_id);
            }
        }
    }

    #[test]
    fn hard_na_pairs_are_never_facts(cfg in world_config(), seed in 0u64..100) {
        let w = World::generate(&cfg);
        prop_assume!(!w.facts.is_empty());
        let mut rng = TensorRng::seed(seed);
        for _ in 0..20 {
            // a saturated world has no NA pair at all — that is a valid
            // outcome (None), never a fact pair and never a hang
            match w.try_sample_hard_na_pair(&mut rng) {
                None => break,
                Some((h, t)) => {
                    prop_assert!(w.relation_of(h, t).is_none());
                    prop_assert_ne!(h, t);
                }
            }
        }
    }

    #[test]
    fn dataset_bags_internally_consistent(cfg in world_config(), noise in 0.0f32..0.9, seed in 0u64..100) {
        let ds = Dataset::generate(&DatasetConfig {
            name: "prop".into(),
            world: cfg,
            sentence: SentenceGenConfig { noise_prob: noise, min_len: 5, max_len: 12 },
            train_fraction: 0.7,
            na_train: 10,
            na_test: 5,
            na_hard_fraction: 0.5,
            zipf_alpha: 1.9,
            max_sentences_per_bag: 8,
            seed,
        });
        for bag in ds.train.iter().chain(&ds.test) {
            prop_assert!(!bag.sentences.is_empty());
            for s in &bag.sentences {
                prop_assert!(s.head_pos < s.tokens.len());
                prop_assert!(s.tail_pos < s.tokens.len());
                prop_assert_ne!(s.head_pos, s.tail_pos);
                // entity tokens at the declared positions
                prop_assert_eq!(ds.vocab.word(s.tokens[s.head_pos]), ds.world.entities[bag.head.0].name.as_str());
                prop_assert_eq!(ds.vocab.word(s.tokens[s.tail_pos]), ds.world.entities[bag.tail.0].name.as_str());
                // NA bags never express
                if bag.label == NA {
                    prop_assert!(!s.expresses_relation);
                }
            }
        }
    }

    #[test]
    fn zipf_samples_in_support(max_k in 1usize..40, alpha in 0.5f64..3.0, seed in 0u64..100) {
        let z = Zipf::new(max_k, alpha);
        let mut rng = TensorRng::seed(seed);
        for _ in 0..200 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=max_k).contains(&k));
        }
    }

    #[test]
    fn zipf_higher_alpha_concentrates_more(max_k in 10usize..30, seed in 0u64..50) {
        let flat = Zipf::new(max_k, 0.5);
        let steep = Zipf::new(max_k, 2.5);
        let mut rng1 = TensorRng::seed(seed);
        let mut rng2 = TensorRng::seed(seed);
        let mean = |z: &Zipf, rng: &mut TensorRng| -> f64 {
            (0..2000).map(|_| z.sample(rng) as f64).sum::<f64>() / 2000.0
        };
        prop_assert!(mean(&steep, &mut rng2) < mean(&flat, &mut rng1));
    }
}
