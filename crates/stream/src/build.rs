//! The shared ingest core: delta batches → dedup → catalog → incremental
//! graph → embedding refresh.
//!
//! Both consumers — the live [`StreamUpdater`](crate::StreamUpdater) thread
//! and the offline `stream-replay` determinism checker — drive this exact
//! pipeline, so what replay verifies is what serving runs.
//!
//! Two embedding refresh modes exist, with different determinism contracts
//! (DESIGN §4i):
//!
//! * [`RefreshMode::Canonical`] — retrain LINE from scratch on the merged
//!   graph. A pure function of `(merged counts, seed)`, therefore invariant
//!   to how the stream was batched; this is what publishes and what the
//!   byte-compare acceptance pins.
//! * [`RefreshMode::Refine`] — warm-start [`LineState`] refinement over the
//!   delta-touched edges. Path-dependent (different batchings give different
//!   tables) but byte-reproducible for a fixed delta sequence, and much
//!   cheaper per publish.

use imre_corpus::stream::DeltaBatch;
use imre_corpus::CoOccurrence;
use imre_graph::{train_line, EntityEmbedding, LineConfig, LineState, RefineConfig};

use crate::catalog::EntityCatalog;
use crate::error::StreamUpdateError;
use crate::incremental::IncrementalProximityGraph;

/// How an embedding refresh is computed.
#[derive(Debug, Clone)]
pub enum RefreshMode {
    /// Full LINE retrain on the merged graph — batching-invariant.
    Canonical,
    /// Warm-start refinement over touched edges — replay-reproducible.
    Refine(RefineConfig),
}

/// Configuration for a [`StreamBuild`].
#[derive(Debug, Clone)]
pub struct StreamBuildConfig {
    /// Co-occurrence admission threshold (same meaning as the offline
    /// builder's).
    pub threshold: u32,
    /// LINE hyperparameters for the canonical rebuild / warm start.
    pub line: LineConfig,
    /// Worker threads for per-batch pair counting (events are sharded
    /// round-robin and the shard tables summed — order-independent, so any
    /// thread count yields the same counts).
    pub threads: usize,
    /// Embedding refresh mode.
    pub refresh: RefreshMode,
}

/// What one batch application did — feeds the `stream:` stats line.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Events surviving dedup.
    pub fresh_events: usize,
    /// Events dropped as re-deliveries.
    pub duplicates: usize,
    /// Entities newly admitted to the catalog.
    pub entities_admitted: usize,
    /// Edges newly admitted past the threshold.
    pub edges_admitted: usize,
    /// SGD samples applied by refine mode (0 in canonical mode).
    pub refine_samples: usize,
}

/// Live ingest state: dedup window, entity catalog, incremental graph, and
/// (in refine mode) the warm LINE tables.
pub struct StreamBuild {
    config: StreamBuildConfig,
    dedup: imre_corpus::StableDedup,
    catalog: EntityCatalog,
    graph: IncrementalProximityGraph,
    state: Option<LineState>,
}

impl StreamBuild {
    /// Starts from a bundle's entity table.
    pub fn new(
        base_entities: &[(String, Vec<usize>)],
        num_types: usize,
        config: StreamBuildConfig,
    ) -> Self {
        let catalog = EntityCatalog::from_entities(base_entities, num_types);
        let mut graph = IncrementalProximityGraph::new(config.threshold);
        graph.ensure_vertices(catalog.len());
        StreamBuild {
            config,
            dedup: imre_corpus::StableDedup::new(),
            catalog,
            graph,
            state: None,
        }
    }

    /// Folds one delta batch into the graph (and, in refine mode, the warm
    /// LINE tables).
    pub fn apply_batch(&mut self, batch: DeltaBatch) -> Result<BatchOutcome, StreamUpdateError> {
        let before = batch.events.len();
        let fresh = self.dedup.retain_fresh(batch);
        let mut outcome = BatchOutcome {
            fresh_events: fresh.len(),
            duplicates: before - fresh.len(),
            ..BatchOutcome::default()
        };
        if fresh.is_empty() {
            return Ok(outcome);
        }
        let admitted_before = self.catalog.admitted();
        // Resolve ids sequentially in arrival order — id assignment must be
        // a pure function of the deduplicated event sequence.
        let mut resolved: Vec<Vec<usize>> = Vec::with_capacity(fresh.len());
        for ev in &fresh {
            let ids = ev
                .entities
                .iter()
                .map(|m| self.catalog.resolve_or_admit(m))
                .collect::<Result<Vec<usize>, _>>()?;
            resolved.push(ids);
        }
        outcome.entities_admitted = self.catalog.admitted() - admitted_before;
        let co = count_pairs_sharded(&resolved, self.config.threads.max(1));
        self.graph.ensure_vertices(self.catalog.len());
        let delta = self.graph.apply_delta(co.iter().map(|(&p, &c)| (p, c)));
        outcome.edges_admitted = delta.edges_admitted;
        if let RefreshMode::Refine(rc) = &self.config.refresh {
            if self.graph.n_edges() > 0 {
                let snapshot = self.graph.snapshot();
                let rc = rc.clone();
                match &mut self.state {
                    Some(state) => {
                        outcome.refine_samples = state.refine(&snapshot, &delta.touched, &rc);
                    }
                    None => {
                        // First edges just arrived: warm-start the tables
                        // with the full batch schedule, then refinement
                        // takes over for subsequent deltas.
                        let mut state = LineState::init(&snapshot, &self.config.line);
                        state.run_base_epochs(&snapshot);
                        self.state = Some(state);
                    }
                }
            }
        }
        Ok(outcome)
    }

    /// Computes the current embedding snapshot per the configured refresh
    /// mode.
    ///
    /// # Errors
    /// [`StreamUpdateError::EmptyGraph`] before any edge is admitted.
    pub fn embedding(&mut self) -> Result<EntityEmbedding, StreamUpdateError> {
        if self.graph.n_edges() == 0 {
            return Err(StreamUpdateError::EmptyGraph);
        }
        self.graph.ensure_vertices(self.catalog.len());
        match &self.config.refresh {
            RefreshMode::Canonical => Ok(train_line(&self.graph.snapshot(), &self.config.line)),
            RefreshMode::Refine(_) => match &mut self.state {
                Some(state) => {
                    // catalog may have grown past the last refine (isolated
                    // admissions); extend tables before snapshotting
                    state.grow(&self.graph.snapshot());
                    Ok(state.embedding())
                }
                None => {
                    let snapshot = self.graph.snapshot();
                    let mut state = LineState::init(&snapshot, &self.config.line);
                    state.run_base_epochs(&snapshot);
                    let emb = state.embedding();
                    self.state = Some(state);
                    Ok(emb)
                }
            },
        }
    }

    /// The entity catalog (base + admitted).
    pub fn catalog(&self) -> &EntityCatalog {
        &self.catalog
    }

    /// The incremental graph.
    pub fn graph(&self) -> &IncrementalProximityGraph {
        &self.graph
    }

    /// The build configuration.
    pub fn config(&self) -> &StreamBuildConfig {
        &self.config
    }
}

/// Counts co-occurrence pairs for resolved events, sharding the event list
/// round-robin over `threads` workers and summing the shard tables. Counts
/// are additive and keys canonical, so the result is independent of the
/// shard count and of scheduling — `--threads 1` and `--threads 4` are
/// byte-identical downstream.
pub fn count_pairs_sharded(resolved: &[Vec<usize>], threads: usize) -> CoOccurrence {
    let count_shard = |shard: usize, stride: usize| {
        let mut co = CoOccurrence::new();
        let mut i = shard;
        while i < resolved.len() {
            let ids = &resolved[i];
            for a in 0..ids.len() {
                for b in (a + 1)..ids.len() {
                    co.add(ids[a], ids[b], 1);
                }
            }
            i += stride;
        }
        co
    };
    if threads <= 1 || resolved.len() < 2 {
        return count_shard(0, 1);
    }
    let shards: Vec<CoOccurrence> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || count_shard(t, threads)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("count shard panicked"))
            .collect()
    });
    let mut total = CoOccurrence::new();
    for shard in &shards {
        total.merge(shard);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use imre_corpus::stream::{LineDeltaSource, StreamSource};
    use imre_corpus::synth_delta_text;
    use std::io::Cursor;

    fn base_entities(n: usize) -> Vec<(String, Vec<usize>)> {
        (0..n).map(|i| (format!("ent{i}"), vec![i % 5])).collect()
    }

    fn config(refresh: RefreshMode) -> StreamBuildConfig {
        StreamBuildConfig {
            threshold: 2,
            line: LineConfig {
                dim: 8,
                samples_per_epoch: 1_500,
                epochs: 1,
                ..Default::default()
            },
            threads: 2,
            refresh,
        }
    }

    fn batches_of(text: &str) -> Vec<DeltaBatch> {
        let mut src = LineDeltaSource::new(Cursor::new(text.as_bytes().to_vec()));
        let mut out = Vec::new();
        while let Some(b) = src.next_batch().unwrap() {
            out.push(b);
        }
        out
    }

    #[test]
    fn sharded_counting_matches_single_thread() {
        let resolved: Vec<Vec<usize>> = (0..50)
            .map(|i| vec![i % 7, (i * 3) % 7, (i * 5 + 1) % 7])
            .collect();
        let one = count_pairs_sharded(&resolved, 1);
        let four = count_pairs_sharded(&resolved, 4);
        assert_eq!(one.len(), four.len());
        for (&(a, b), &c) in one.iter() {
            assert_eq!(four.count(a, b), c, "pair ({a},{b})");
        }
    }

    #[test]
    fn canonical_embedding_is_batching_invariant() {
        let names: Vec<String> = (0..8).map(|i| format!("ent{i}")).collect();
        let text = synth_delta_text(&names, 3, 10, 7);
        let merged = text.replace("\n\n", "\n");
        let build_with = |t: &str| {
            let mut b = StreamBuild::new(&base_entities(8), 38, config(RefreshMode::Canonical));
            for batch in batches_of(t) {
                b.apply_batch(batch).unwrap();
            }
            b.embedding().unwrap()
        };
        let a = build_with(&text);
        let b = build_with(&merged);
        assert_eq!(a.matrix().data(), b.matrix().data());
    }

    #[test]
    fn refine_mode_is_replay_reproducible() {
        let names: Vec<String> = (0..8).map(|i| format!("ent{i}")).collect();
        let text = synth_delta_text(&names, 4, 8, 3);
        let run = || {
            let rc = RefineConfig {
                samples: 300,
                lr: 0.01,
                negatives: 5,
            };
            let mut b = StreamBuild::new(&base_entities(8), 38, config(RefreshMode::Refine(rc)));
            for batch in batches_of(&text) {
                b.apply_batch(batch).unwrap();
            }
            b.embedding().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.matrix().data(), b.matrix().data());
    }

    #[test]
    fn cold_start_entity_is_admitted_and_embedded() {
        let mut b = StreamBuild::new(&base_entities(3), 38, config(RefreshMode::Canonical));
        let text = "1\tent0\tnova:4\n2\tent0\tnova\n3\tent1\tent2\n4\tent1\tent2\n";
        for batch in batches_of(text) {
            b.apply_batch(batch).unwrap();
        }
        assert_eq!(b.catalog().admitted(), 1);
        assert_eq!(b.catalog().entries()[3], ("nova".to_string(), vec![4]));
        let emb = b.embedding().unwrap();
        assert_eq!(emb.len(), 4);
        assert!(emb.vector(3).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn empty_graph_embedding_is_typed_error() {
        let mut b = StreamBuild::new(&base_entities(3), 38, config(RefreshMode::Canonical));
        assert!(matches!(b.embedding(), Err(StreamUpdateError::EmptyGraph)));
    }

    #[test]
    fn duplicates_are_counted_not_applied() {
        let mut b = StreamBuild::new(&base_entities(3), 38, config(RefreshMode::Canonical));
        let text = "1\tent0\tent1\n\n1\tent0\tent1\n2\tent0\tent1\n";
        let batches = batches_of(text);
        let o1 = b.apply_batch(batches[0].clone()).unwrap();
        assert_eq!((o1.fresh_events, o1.duplicates), (1, 0));
        let o2 = b.apply_batch(batches[1].clone()).unwrap();
        assert_eq!((o2.fresh_events, o2.duplicates), (1, 1));
        assert_eq!(b.graph().counts()[&(0, 1)], 2);
    }
}
