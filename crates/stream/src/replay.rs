//! Offline replay of a delta stream: deterministic re-derivation of the
//! bundle a live [`StreamUpdater`](crate::StreamUpdater) would publish.
//!
//! `imre stream-replay` drives this to audit a stream: feed the same base
//! bundle and delta file, get byte-identical bundle bytes — under
//! [`RefreshMode::Canonical`](crate::RefreshMode) also invariant to how the
//! corpus was split into batches and to `threads`.

use imre_corpus::stream::{LineDeltaSource, StreamError, StreamSource};
use imre_serve::{load_bundle, write_bundle};
use std::path::Path;

use crate::build::{StreamBuild, StreamBuildConfig};
use crate::error::StreamUpdateError;

/// Accounting and artifact from a full-stream replay.
#[derive(Debug)]
pub struct ReplayReport {
    /// Delta batches folded in.
    pub batches: u64,
    /// Events dropped as re-deliveries.
    pub duplicates: u64,
    /// Malformed batches skipped (counted, not fatal — matching the live
    /// updater's policy).
    pub malformed: u64,
    /// Entities admitted beyond the base table.
    pub entities_admitted: usize,
    /// Edges the final graph holds.
    pub n_edges: usize,
    /// The serialized refreshed bundle (`.imrb` bytes).
    pub bundle: Vec<u8>,
}

/// Replays every batch in `delta_path` on top of the bundle at `base_path`
/// and returns the refreshed bundle bytes plus accounting.
///
/// `config.line.dim` is overridden to the base embedding's dimension, same
/// as the live updater does at spawn.
///
/// # Errors
/// I/O on either file, [`StreamUpdateError::NoEmbedding`] for a bundle
/// without an entity embedding, [`StreamUpdateError::EmptyGraph`] when no
/// pair ever crossed the threshold.
pub fn replay(
    base_path: &Path,
    delta_path: &Path,
    mut config: StreamBuildConfig,
) -> Result<ReplayReport, StreamUpdateError> {
    let mut bundle = load_bundle(base_path)?;
    let embedding = bundle
        .embedding
        .as_ref()
        .ok_or(StreamUpdateError::NoEmbedding)?;
    config.line.dim = embedding.dim();

    let mut build = StreamBuild::new(&bundle.entities, bundle.model.num_types(), config);
    let mut source = LineDeltaSource::open(delta_path)?;
    let mut report = ReplayReport {
        batches: 0,
        duplicates: 0,
        malformed: 0,
        entities_admitted: 0,
        n_edges: 0,
        bundle: Vec::new(),
    };
    loop {
        match source.next_batch() {
            Ok(Some(batch)) => {
                let outcome = build.apply_batch(batch)?;
                report.batches += 1;
                report.duplicates += outcome.duplicates as u64;
            }
            Ok(None) => break,
            Err(StreamError::Io(e)) => return Err(StreamUpdateError::Io(e)),
            Err(_malformed) => report.malformed += 1,
        }
    }

    let refreshed = build.embedding()?;
    bundle.entities = build.catalog().entries().to_vec();
    bundle.embedding = Some(refreshed);
    report.entities_admitted = build.catalog().admitted();
    report.n_edges = build.graph().n_edges();
    write_bundle(&bundle, &mut report.bundle)?;
    Ok(report)
}
