//! imre-stream: streaming corpus ingestion with an incremental proximity
//! graph, online LINE refinement, and live bundle hot-swap.
//!
//! The crate closes the loop from a *growing* corpus back into a *serving*
//! model without ever pausing the front end:
//!
//! - [`incremental`] — [`IncrementalProximityGraph`] folds co-occurrence
//!   count deltas into the proximity graph one batch at a time, staying
//!   byte-identical to a from-scratch
//!   [`ProximityGraph::from_counts`](imre_graph::ProximityGraph) build on
//!   the merged corpus (touched-only binary-search updates; an O(E)
//!   reweight only when the max count — the weight denominator — moves);
//! - [`catalog`] — [`EntityCatalog`] admits entities unseen at training
//!   time, assigning ids in first-sight order over the deduplicated event
//!   stream so the assignment is batching-invariant;
//! - [`build`] — [`StreamBuild`] is the shared ingest core (dedup →
//!   resolve → sharded pair counting → graph delta → embedding refresh)
//!   used by both the live updater and offline replay, with two refresh
//!   contracts ([`RefreshMode`]): `Canonical` re-derives the embedding from
//!   the merged graph (partition- and thread-invariant), `Refine`
//!   warm-starts from current parameters and touches only delta edges
//!   (path-dependent but byte-reproducible for a fixed delta sequence);
//! - [`updater`] — [`StreamUpdater`] runs ingest on a background thread and
//!   publishes refreshed bundles through the hot-swap
//!   [`Registry`](imre_serve::Registry) while the epoll front end keeps
//!   serving, reporting through the `stream:` stats line;
//! - [`replay`] — [`replay()`](replay::replay) re-derives the published
//!   bundle offline for audit (`imre stream-replay`).

#![deny(missing_docs)]

pub mod build;
pub mod catalog;
pub mod error;
pub mod incremental;
pub mod replay;
pub mod updater;

pub use build::{BatchOutcome, RefreshMode, StreamBuild, StreamBuildConfig};
pub use catalog::EntityCatalog;
pub use error::StreamUpdateError;
pub use incremental::{DeltaOutcome, IncrementalProximityGraph};
pub use replay::{replay, ReplayReport};
pub use updater::{StreamSummary, StreamUpdater, StreamUpdaterConfig};
