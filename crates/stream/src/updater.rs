//! The background stream updater: consume deltas, refresh the embedding,
//! publish through the hot-swap registry — while serving never pauses.
//!
//! One thread owns the whole ingest state ([`StreamBuild`]). Per batch it
//! folds counts into the incremental graph; every `publish_every` batches
//! (and once more at end of stream) it:
//!
//! 1. computes the embedding refresh (canonical rebuild by default — see
//!    [`RefreshMode`](crate::RefreshMode));
//! 2. reloads the base `.imrb` from disk (a v3 bundle gets a fresh mmap),
//!    swaps in the extended entity table and the new embedding, and keeps
//!    the model / ANN / quant sections as-is;
//! 3. optionally writes the refreshed bundle atomically (tmp + rename);
//! 4. registers it under the serving name via [`Registry::insert`] — a
//!    pointer swap; in-flight requests finish on the old `Arc`, and an old
//!    v3 mapping unmaps only when its last borrower drops
//!    (`imre_serve::live_mappings` observes this).
//!
//! Malformed delta lines are typed errors ([`StreamError`]): the updater
//! counts them in `stream: malformed=` and skips to the next batch; events
//! buffered before the bad line in the same batch are dropped with it
//! (re-delivery is safe — dedup is batching-stable). Only I/O failures stop
//! the thread.

use imre_corpus::stream::{StreamError, StreamSource};
use imre_serve::{load_bundle, save_bundle, Metrics, Registry, ServingModel};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::build::{StreamBuild, StreamBuildConfig};
use crate::error::StreamUpdateError;

/// Configuration for [`StreamUpdater::spawn`].
#[derive(Debug, Clone)]
pub struct StreamUpdaterConfig {
    /// Registry name to publish under (the name the front end serves).
    pub model_name: String,
    /// Publish after every N delta batches (and at end of stream). 0 means
    /// publish only at end of stream.
    pub publish_every: usize,
    /// Ingest configuration. `line.dim` is overridden to the model's entity
    /// dimension at spawn — the bundle cannot validate otherwise.
    pub build: StreamBuildConfig,
    /// Where to persist refreshed bundles (atomic tmp + rename); `None`
    /// publishes in memory only.
    pub out_path: Option<PathBuf>,
}

/// Final accounting returned by [`StreamUpdater::join`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Delta batches folded in.
    pub batches: u64,
    /// Bundles published through the registry.
    pub publishes: u64,
    /// Entities admitted beyond the base table.
    pub entities_admitted: usize,
    /// Malformed batches skipped with a typed error.
    pub malformed: u64,
    /// Events dropped as re-deliveries.
    pub duplicates: u64,
}

/// Handle to the background updater thread.
pub struct StreamUpdater {
    handle: JoinHandle<Result<StreamSummary, StreamUpdateError>>,
}

impl StreamUpdater {
    /// Validates the base bundle and starts the updater thread.
    ///
    /// The base bundle at `base_path` is loaded once up front for its entity
    /// table and dimensions (failing fast on a bad artifact), and re-loaded
    /// per publish so every published bundle starts from the frozen
    /// model/ANN/quant sections on disk.
    ///
    /// # Errors
    /// [`StreamUpdateError::Io`] if the base bundle cannot be read,
    /// [`StreamUpdateError::NoEmbedding`] if it has no entity embedding to
    /// refresh.
    pub fn spawn<S>(
        mut source: S,
        base_path: PathBuf,
        registry: Arc<Registry>,
        metrics: Arc<Metrics>,
        mut config: StreamUpdaterConfig,
    ) -> Result<StreamUpdater, StreamUpdateError>
    where
        S: StreamSource + Send + 'static,
    {
        let base = load_bundle(&base_path)?;
        let embedding = base
            .embedding
            .as_ref()
            .ok_or(StreamUpdateError::NoEmbedding)?;
        config.build.line.dim = embedding.dim();
        let base_entities = base.entities.clone();
        let num_types = base.model.num_types();
        drop(base);

        let handle = std::thread::Builder::new()
            .name("imre-stream-updater".to_string())
            .spawn(move || {
                let mut build = StreamBuild::new(&base_entities, num_types, config.build.clone());
                let mut summary = StreamSummary::default();
                let mut dirty_batches = 0u64;
                loop {
                    match source.next_batch() {
                        Ok(Some(batch)) => {
                            let outcome = build.apply_batch(batch)?;
                            summary.batches += 1;
                            summary.duplicates += outcome.duplicates as u64;
                            dirty_batches += 1;
                            metrics
                                .stream_deltas_applied
                                .fetch_add(1, Ordering::Relaxed);
                            metrics
                                .stream_duplicates_dropped
                                .fetch_add(outcome.duplicates as u64, Ordering::Relaxed);
                            metrics
                                .stream_entities_admitted
                                .fetch_add(outcome.entities_admitted as u64, Ordering::Relaxed);
                            let due = config.publish_every > 0
                                && summary.batches % config.publish_every as u64 == 0;
                            if due && build.graph().n_edges() > 0 {
                                publish(&mut build, &base_path, &registry, &metrics, &config)?;
                                summary.publishes += 1;
                                dirty_batches = 0;
                            }
                        }
                        Ok(None) => {
                            if dirty_batches > 0 && build.graph().n_edges() > 0 {
                                publish(&mut build, &base_path, &registry, &metrics, &config)?;
                                summary.publishes += 1;
                            }
                            summary.entities_admitted = build.catalog().admitted();
                            return Ok(summary);
                        }
                        Err(StreamError::Io(e)) => {
                            return Err(StreamUpdateError::Io(e));
                        }
                        Err(_malformed) => {
                            summary.malformed += 1;
                            metrics.stream_malformed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
            .map_err(StreamUpdateError::Io)?;
        Ok(StreamUpdater { handle })
    }

    /// Waits for end of stream and returns the final accounting.
    ///
    /// # Panics
    /// If the updater thread panicked.
    pub fn join(self) -> Result<StreamSummary, StreamUpdateError> {
        self.handle.join().expect("stream updater thread panicked")
    }

    /// Whether the updater thread has exited.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// One publish: refresh embedding, reload base, swap tables, persist, and
/// hot-swap into the registry.
fn publish(
    build: &mut StreamBuild,
    base_path: &std::path::Path,
    registry: &Registry,
    metrics: &Metrics,
    config: &StreamUpdaterConfig,
) -> Result<(), StreamUpdateError> {
    let t0 = Instant::now();
    let embedding = build.embedding()?;
    let refine_ns = t0.elapsed().as_nanos() as u64;

    let mut bundle = load_bundle(base_path)?;
    bundle.entities = build.catalog().entries().to_vec();
    bundle.embedding = Some(embedding);
    if let Some(out) = &config.out_path {
        let tmp = out.with_extension("imrb.tmp");
        save_bundle(&bundle, &tmp)?;
        std::fs::rename(&tmp, out)?;
    }
    let model = ServingModel::new(bundle)?;
    registry.insert(config.model_name.clone(), model);

    metrics.stream_publishes.fetch_add(1, Ordering::Relaxed);
    metrics
        .stream_refine_ns
        .fetch_add(refine_ns, Ordering::Relaxed);
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    metrics
        .stream_last_publish_unix_ms
        .store(now_ms, Ordering::Relaxed);
    Ok(())
}
