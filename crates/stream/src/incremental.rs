//! The incremental entity proximity graph.
//!
//! [`ProximityGraph::from_counts`](imre_graph::ProximityGraph) freezes a
//! corpus and builds once; [`IncrementalProximityGraph`] folds co-occurrence
//! count *deltas* in as they arrive and maintains the same edge list and
//! adjacency lists the offline builder would produce on the merged corpus —
//! **byte-identical**, pinned by the determinism proptests in
//! `tests/determinism.rs`. That identity is what makes batching semantically
//! invisible: however the stream is cut, the graph (and therefore the
//! canonical embedding rebuild trained on it) is the same.
//!
//! How the identity is maintained:
//!
//! * Counts accumulate in a canonical-keyed `BTreeMap` via
//!   [`ProximityGraph::merge_counts`], which also reports the touched pairs.
//! * The offline builder sorts canonical keys, so its edge list is
//!   lexicographically ascending and every adjacency list is ascending by
//!   neighbour id. Both properties make binary-search insertion exact: a new
//!   edge lands at its `Err(pos)` slot, a count bump updates in place.
//! * Counts only grow (deltas are sentence observations), so edges never
//!   fall back below the threshold and the max count never decreases.
//! * The paper's weight `ln(c+1)/ln(max+1)` couples every edge to the global
//!   max. When a delta raises the max, all weights are recomputed from the
//!   stored per-edge counts and the adjacency lists are rebuilt in one O(E)
//!   pass; otherwise only the touched pairs' entries are rewritten — the
//!   "re-sort only touched adjacency lists" fast path.

use imre_graph::ProximityGraph;
use std::collections::BTreeMap;

/// What one [`IncrementalProximityGraph::apply_delta`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Canonical pairs whose count changed, sorted, deduplicated.
    pub touched: Vec<(usize, usize)>,
    /// Edges newly admitted past the threshold by this delta.
    pub edges_admitted: usize,
    /// Whether the global max count rose (forcing the O(E) reweight pass).
    pub reweighted_all: bool,
}

/// A proximity graph that grows by count deltas, byte-identical to an
/// offline [`ProximityGraph::from_counts`] build on the merged corpus.
pub struct IncrementalProximityGraph {
    counts: BTreeMap<(usize, usize), u32>,
    threshold: u32,
    n_vertices: usize,
    /// Max count among kept (≥ threshold) pairs — the weight denominator's
    /// input. Tracked over kept pairs only, exactly as `from_counts` takes
    /// its max over the filtered list.
    max_kept: u32,
    /// Canonical edge list, lexicographically sorted, mirrored by the
    /// offline builder.
    edges: Vec<(usize, usize, f32)>,
    /// Per-edge raw counts, parallel to `edges` (needed to recompute weights
    /// when the denominator moves).
    edge_counts: Vec<u32>,
    adjacency: Vec<Vec<(usize, f32)>>,
}

impl IncrementalProximityGraph {
    /// An empty graph with the given admission threshold.
    pub fn new(threshold: u32) -> Self {
        IncrementalProximityGraph {
            counts: BTreeMap::new(),
            threshold: threshold.max(1),
            n_vertices: 0,
            max_kept: 0,
            edges: Vec::new(),
            edge_counts: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Grows the vertex set to at least `n` (for entities admitted to the
    /// catalog before any co-occurrence crosses the threshold).
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.n_vertices {
            self.n_vertices = n;
            self.adjacency.resize(n, Vec::new());
        }
    }

    /// Folds a count delta in, updating edges, weights, and adjacency lists.
    pub fn apply_delta<I>(&mut self, delta: I) -> DeltaOutcome
    where
        I: IntoIterator<Item = ((usize, usize), u32)>,
    {
        let touched = ProximityGraph::merge_counts(&mut self.counts, delta);
        if let Some(&(_, b)) = touched.last() {
            // touched is sorted by (u, v) with u < v, so the largest second
            // component over the whole list bounds the vertex set.
            let max_v = touched.iter().map(|&(_, v)| v).max().unwrap_or(b);
            self.ensure_vertices(max_v + 1);
        }

        // Does this delta raise the kept-max (and therefore the denominator)?
        let mut new_max = self.max_kept;
        for &pair in &touched {
            let c = self.counts[&pair];
            if c >= self.threshold && c > new_max {
                new_max = c;
            }
        }

        let mut edges_admitted = 0usize;
        if new_max > self.max_kept {
            self.max_kept = new_max;
            // Denominator moved: splice the touched pairs' counts into the
            // edge list first, then recompute every weight and rebuild
            // adjacency in one deterministic O(E) pass.
            for &pair in &touched {
                let c = self.counts[&pair];
                if c < self.threshold {
                    continue;
                }
                match self.find_edge(pair) {
                    Ok(i) => self.edge_counts[i] = c,
                    Err(i) => {
                        self.edges.insert(i, (pair.0, pair.1, 0.0));
                        self.edge_counts.insert(i, c);
                        edges_admitted += 1;
                    }
                }
            }
            let denom = ((self.max_kept + 1) as f32).ln();
            for (e, &c) in self.edges.iter_mut().zip(&self.edge_counts) {
                e.2 = ((c + 1) as f32).ln() / denom;
            }
            self.rebuild_adjacency();
            return DeltaOutcome {
                touched,
                edges_admitted,
                reweighted_all: true,
            };
        }

        // Fast path: denominator unchanged; only touched pairs move.
        let denom = ((self.max_kept + 1) as f32).ln();
        for &pair in &touched {
            let c = self.counts[&pair];
            if c < self.threshold {
                continue;
            }
            let w = ((c + 1) as f32).ln() / denom;
            match self.find_edge(pair) {
                Ok(i) => {
                    self.edges[i].2 = w;
                    self.edge_counts[i] = c;
                    self.update_adjacency(pair.0, pair.1, w);
                    self.update_adjacency(pair.1, pair.0, w);
                }
                Err(i) => {
                    self.edges.insert(i, (pair.0, pair.1, w));
                    self.edge_counts.insert(i, c);
                    self.insert_adjacency(pair.0, pair.1, w);
                    self.insert_adjacency(pair.1, pair.0, w);
                    edges_admitted += 1;
                }
            }
        }
        DeltaOutcome {
            touched,
            edges_admitted,
            reweighted_all: false,
        }
    }

    fn find_edge(&self, (u, v): (usize, usize)) -> Result<usize, usize> {
        self.edges
            .binary_search_by(|&(a, b, _)| (a, b).cmp(&(u, v)))
    }

    /// Rewrites the weight of the existing `at → neighbor` adjacency entry.
    fn update_adjacency(&mut self, at: usize, neighbor: usize, w: f32) {
        let list = &mut self.adjacency[at];
        let i = list
            .binary_search_by(|&(n, _)| n.cmp(&neighbor))
            .expect("adjacency entry must exist for an existing edge");
        list[i].1 = w;
    }

    /// Inserts `at → neighbor` keeping the list ascending by neighbour id —
    /// the touched-list "re-sort" is a single positioned insert because the
    /// list is always sorted.
    fn insert_adjacency(&mut self, at: usize, neighbor: usize, w: f32) {
        let list = &mut self.adjacency[at];
        let i = list
            .binary_search_by(|&(n, _)| n.cmp(&neighbor))
            .expect_err("edge already present in adjacency");
        list.insert(i, (neighbor, w));
    }

    /// Rebuilds every adjacency list from the sorted edge list — the same
    /// derivation `from_counts` performs, so the result is byte-identical.
    fn rebuild_adjacency(&mut self) {
        for list in &mut self.adjacency {
            list.clear();
        }
        for &(u, v, w) in &self.edges {
            self.adjacency[u].push((v, w));
            self.adjacency[v].push((u, w));
        }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of admitted (≥ threshold) edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Admission threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Neighbours of `v` with weights, ascending by neighbour id.
    pub fn neighbors(&self, v: usize) -> &[(usize, f32)] {
        &self.adjacency[v]
    }

    /// The canonical sorted edge list.
    pub fn edges(&self) -> &[(usize, usize, f32)] {
        &self.edges
    }

    /// The merged canonical count table (all pairs, kept or not).
    pub fn counts(&self) -> &BTreeMap<(usize, usize), u32> {
        &self.counts
    }

    /// Materialises a [`ProximityGraph`] snapshot for the embedding layer.
    /// Byte-identical to `ProximityGraph::from_counts` on the merged counts
    /// (pinned by proptest).
    pub fn snapshot(&self) -> ProximityGraph {
        ProximityGraph::from_parts(self.n_vertices, self.edges.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offline(counts: &BTreeMap<(usize, usize), u32>, n: usize, threshold: u32) -> ProximityGraph {
        ProximityGraph::from_merged_with(counts, n, threshold)
    }

    fn assert_matches_offline(inc: &IncrementalProximityGraph) {
        let off = offline(inc.counts(), inc.n_vertices(), inc.threshold());
        assert_eq!(inc.n_edges(), off.n_edges());
        for (&(u1, v1, w1), &(u2, v2, w2)) in inc.edges().iter().zip(off.edges()) {
            assert_eq!((u1, v1, w1.to_bits()), (u2, v2, w2.to_bits()));
        }
        for v in 0..inc.n_vertices() {
            let a: Vec<(usize, u32)> = inc
                .neighbors(v)
                .iter()
                .map(|&(n, w)| (n, w.to_bits()))
                .collect();
            let b: Vec<(usize, u32)> = off
                .neighbors(v)
                .iter()
                .map(|&(n, w)| (n, w.to_bits()))
                .collect();
            assert_eq!(a, b, "adjacency of {v}");
        }
        // and the snapshot hand-off preserves it
        let snap = inc.snapshot();
        assert_eq!(snap.n_edges(), off.n_edges());
        for (&(u1, v1, w1), &(u2, v2, w2)) in snap.edges().iter().zip(off.edges()) {
            assert_eq!((u1, v1, w1.to_bits()), (u2, v2, w2.to_bits()));
        }
    }

    #[test]
    fn single_delta_matches_offline_build() {
        let mut inc = IncrementalProximityGraph::new(2);
        inc.apply_delta(vec![((0, 1), 10), ((1, 2), 5), ((0, 2), 2), ((2, 3), 1)]);
        assert_matches_offline(&inc);
        assert_eq!(inc.n_edges(), 3);
    }

    #[test]
    fn threshold_crossing_admits_edge_later() {
        let mut inc = IncrementalProximityGraph::new(3);
        let out = inc.apply_delta(vec![((0, 1), 2)]);
        assert_eq!(out.edges_admitted, 0);
        assert_eq!(inc.n_edges(), 0);
        let out = inc.apply_delta(vec![((1, 0), 1)]);
        assert_eq!(out.edges_admitted, 1);
        assert_eq!(inc.n_edges(), 1);
        assert_matches_offline(&inc);
    }

    #[test]
    fn new_vertices_grow_the_graph() {
        let mut inc = IncrementalProximityGraph::new(1);
        inc.apply_delta(vec![((0, 1), 3)]);
        assert_eq!(inc.n_vertices(), 2);
        inc.apply_delta(vec![((5, 9), 4)]);
        assert_eq!(inc.n_vertices(), 10);
        assert_matches_offline(&inc);
    }

    #[test]
    fn max_bump_reweights_everything() {
        let mut inc = IncrementalProximityGraph::new(1);
        inc.apply_delta(vec![((0, 1), 3), ((1, 2), 2)]);
        let w_before = inc.neighbors(2)[0].1;
        let out = inc.apply_delta(vec![((0, 1), 50)]);
        assert!(out.reweighted_all);
        let w_after = inc.neighbors(2)[0].1;
        assert!(w_after < w_before, "denominator grew, weights must shrink");
        assert_matches_offline(&inc);
    }

    #[test]
    fn fast_path_touches_only_updated_pairs() {
        let mut inc = IncrementalProximityGraph::new(1);
        inc.apply_delta(vec![((0, 1), 9), ((1, 2), 2), ((2, 3), 2)]);
        // bump (1,2) without passing the max of 9
        let out = inc.apply_delta(vec![((2, 1), 3)]);
        assert!(!out.reweighted_all);
        assert_eq!(out.touched, vec![(1, 2)]);
        assert_matches_offline(&inc);
    }

    #[test]
    fn many_random_deltas_stay_identical_to_offline() {
        // deterministic pseudo-random delta stream
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut inc = IncrementalProximityGraph::new(2);
        for _ in 0..40 {
            let k = 1 + (step() % 6) as usize;
            let delta: Vec<((usize, usize), u32)> = (0..k)
                .map(|_| {
                    let a = (step() % 12) as usize;
                    let b = (step() % 12) as usize;
                    let c = 1 + (step() % 5) as u32;
                    ((a, b), c)
                })
                .collect();
            inc.apply_delta(delta);
            assert_matches_offline(&inc);
        }
    }

    #[test]
    fn ensure_vertices_only_grows() {
        let mut inc = IncrementalProximityGraph::new(1);
        inc.ensure_vertices(4);
        assert_eq!(inc.n_vertices(), 4);
        inc.ensure_vertices(2);
        assert_eq!(inc.n_vertices(), 4);
        inc.apply_delta(vec![((0, 1), 2)]);
        assert_matches_offline(&inc);
    }
}
