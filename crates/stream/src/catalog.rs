//! The live entity catalog: the serving entity table plus a name index,
//! growable as the stream admits entities absent from training.

use imre_corpus::stream::EntityMention;
use std::collections::HashMap;

use crate::error::StreamUpdateError;

/// Entity table (`(name, coarse type ids)` indexed by entity id) with a
/// name → id index. Ids are assigned in first-sight order over the
/// deduplicated event stream, so the assignment is a pure function of the
/// event sequence — independent of batching.
pub struct EntityCatalog {
    entries: Vec<(String, Vec<usize>)>,
    index: HashMap<String, usize>,
    /// Valid type-id range (the model's type-embedding table height).
    num_types: usize,
    admitted: usize,
}

impl EntityCatalog {
    /// Starts from a bundle's frozen entity table.
    pub fn from_entities(entities: &[(String, Vec<usize>)], num_types: usize) -> Self {
        let index = entities
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (name.clone(), i))
            .collect();
        EntityCatalog {
            entries: entities.to_vec(),
            index,
            num_types,
            admitted: 0,
        }
    }

    /// Resolves a mention to an entity id, admitting it with a fresh id if
    /// unseen. A new entity takes the mention's type annotation (default
    /// type `0` when absent — `embed_types` requires a non-empty list).
    ///
    /// # Errors
    /// [`StreamUpdateError::TypeOutOfRange`] if an annotated type id does
    /// not fit the model's type-embedding table.
    pub fn resolve_or_admit(
        &mut self,
        mention: &EntityMention,
    ) -> Result<usize, StreamUpdateError> {
        if let Some(&id) = self.index.get(&mention.name) {
            return Ok(id);
        }
        for &t in &mention.types {
            if t >= self.num_types {
                return Err(StreamUpdateError::TypeOutOfRange {
                    entity: mention.name.clone(),
                    type_id: t,
                    num_types: self.num_types,
                });
            }
        }
        let types = if mention.types.is_empty() {
            vec![0]
        } else {
            mention.types.clone()
        };
        let id = self.entries.len();
        self.entries.push((mention.name.clone(), types));
        self.index.insert(mention.name.clone(), id);
        self.admitted += 1;
        Ok(id)
    }

    /// The full entity table (base + admitted), cloneable into a bundle.
    pub fn entries(&self) -> &[(String, Vec<usize>)] {
        &self.entries
    }

    /// Total entities (base + admitted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entities admitted by the stream (beyond the base table).
    pub fn admitted(&self) -> usize {
        self.admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mention(name: &str, types: &[usize]) -> EntityMention {
        EntityMention {
            name: name.to_string(),
            types: types.to_vec(),
        }
    }

    #[test]
    fn base_entities_resolve_without_admission() {
        let base = vec![
            ("alpha".to_string(), vec![1]),
            ("beta".to_string(), vec![2]),
        ];
        let mut cat = EntityCatalog::from_entities(&base, 38);
        assert_eq!(cat.resolve_or_admit(&mention("beta", &[])).unwrap(), 1);
        assert_eq!(cat.admitted(), 0);
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn new_entities_get_sequential_ids_and_types() {
        let base = vec![("alpha".to_string(), vec![1])];
        let mut cat = EntityCatalog::from_entities(&base, 38);
        let id = cat.resolve_or_admit(&mention("gamma", &[3, 5])).unwrap();
        assert_eq!(id, 1);
        assert_eq!(cat.entries()[1], ("gamma".to_string(), vec![3, 5]));
        // untyped admission falls back to type 0
        let id2 = cat.resolve_or_admit(&mention("delta", &[])).unwrap();
        assert_eq!(cat.entries()[id2].1, vec![0]);
        assert_eq!(cat.admitted(), 2);
        // re-resolving keeps the id and does not re-admit
        assert_eq!(cat.resolve_or_admit(&mention("gamma", &[])).unwrap(), 1);
        assert_eq!(cat.admitted(), 2);
    }

    #[test]
    fn out_of_range_type_is_a_typed_error() {
        let mut cat = EntityCatalog::from_entities(&[], 4);
        let err = cat.resolve_or_admit(&mention("x", &[9])).unwrap_err();
        match err {
            StreamUpdateError::TypeOutOfRange {
                entity,
                type_id,
                num_types,
            } => {
                assert_eq!(entity, "x");
                assert_eq!(type_id, 9);
                assert_eq!(num_types, 4);
            }
            other => panic!("wrong error: {other}"),
        }
        assert_eq!(cat.len(), 0, "failed admission must not grow the table");
    }
}
