//! Typed errors for the streaming update pipeline.

use imre_corpus::stream::StreamError;
use imre_serve::ServeError;
use std::fmt;
use std::io;

/// Everything that can go wrong between a delta line and a published bundle.
#[derive(Debug)]
pub enum StreamUpdateError {
    /// The delta source produced a malformed line or failed to read.
    Source(StreamError),
    /// Bundle IO (load of the base artifact, atomic save of a publish).
    Io(io::Error),
    /// The refreshed bundle failed serving validation or registration.
    Serve(ServeError),
    /// A stream-annotated type id exceeds the model's type-embedding table.
    TypeOutOfRange {
        /// The entity whose annotation was rejected.
        entity: String,
        /// The offending type id.
        type_id: usize,
        /// The model's table height (valid ids are `0..num_types`).
        num_types: usize,
    },
    /// A publish was requested before any co-occurrence crossed the
    /// admission threshold — there is no graph to embed yet.
    EmptyGraph,
    /// The base bundle has no entity embedding (streaming refresh requires
    /// an `*-MR` bundle; there is nothing to refresh otherwise).
    NoEmbedding,
}

impl fmt::Display for StreamUpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamUpdateError::Source(e) => write!(f, "delta source: {e}"),
            StreamUpdateError::Io(e) => write!(f, "bundle io: {e}"),
            StreamUpdateError::Serve(e) => write!(f, "serving: {e}"),
            StreamUpdateError::TypeOutOfRange {
                entity,
                type_id,
                num_types,
            } => write!(
                f,
                "entity {entity:?}: type id {type_id} out of range (model has {num_types} types)"
            ),
            StreamUpdateError::EmptyGraph => {
                write!(f, "no co-occurrence has crossed the threshold yet")
            }
            StreamUpdateError::NoEmbedding => {
                write!(f, "base bundle carries no entity embedding to refresh")
            }
        }
    }
}

impl std::error::Error for StreamUpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamUpdateError::Source(e) => Some(e),
            StreamUpdateError::Io(e) => Some(e),
            StreamUpdateError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for StreamUpdateError {
    fn from(e: StreamError) -> Self {
        StreamUpdateError::Source(e)
    }
}

impl From<io::Error> for StreamUpdateError {
    fn from(e: io::Error) -> Self {
        StreamUpdateError::Io(e)
    }
}

impl From<ServeError> for StreamUpdateError {
    fn from(e: ServeError) -> Self {
        StreamUpdateError::Serve(e)
    }
}
