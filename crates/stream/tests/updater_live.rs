//! Live-path test for the background updater: train a real smoke model,
//! serve it, stream deltas that mention an entity the model has never seen,
//! and verify the cold-start entity becomes answerable through the engine
//! after a live publish — with serving active the whole time.

use imre_core::{HyperParams, ModelSpec};
use imre_eval::{smoke_config, Pipeline};
use imre_graph::{EntityEmbedding, LineConfig};
use imre_serve::{
    load_bundle, save_bundle, write_bundle, Bundle, EngineConfig, InferRequest, Registry,
    ServeHandle, ServingModel,
};
use imre_stream::{
    RefreshMode, StreamBuildConfig, StreamUpdateError, StreamUpdater, StreamUpdaterConfig,
};
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

struct Fixture {
    bundle_bytes: Vec<u8>,
    entity_names: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hp = HyperParams {
            epochs: 2,
            ..HyperParams::tiny()
        };
        let pipeline = Pipeline::build(&smoke_config(5), hp);
        let model = pipeline.train_system(ModelSpec::pa_tmr(), 11);
        let embedding = EntityEmbedding::from_matrix(pipeline.embedding.matrix().clone());
        let bundle = Bundle::new(
            model,
            pipeline.dataset.vocab.clone(),
            &pipeline.dataset.world,
            Some(embedding),
        );
        let mut bundle_bytes = Vec::new();
        write_bundle(&bundle, &mut bundle_bytes).expect("serialize bundle");
        let entity_names = bundle
            .entities
            .iter()
            .map(|(name, _)| name.clone())
            .collect();
        Fixture {
            bundle_bytes,
            entity_names,
        }
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("imre_stream_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Writes the fixture bundle to disk and returns its path.
fn base_bundle_path(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("base.imrb");
    let bundle =
        imre_serve::read_bundle(&mut fixture().bundle_bytes.as_slice()).expect("fixture parses");
    save_bundle(&bundle, &path).expect("save base bundle");
    path
}

fn build_config() -> StreamBuildConfig {
    StreamBuildConfig {
        threshold: 2,
        line: LineConfig {
            dim: 8, // overridden to the bundle's embedding dim at spawn
            samples_per_epoch: 1_000,
            epochs: 1,
            ..Default::default()
        },
        threads: 2,
        refresh: RefreshMode::Canonical,
    }
}

/// Three delta batches where a brand-new entity `novastar` co-occurs with
/// base entities past the threshold.
fn delta_text(e0: &str, e1: &str) -> String {
    format!(
        "1\t{e0}\t{e1}\n\
         2\t{e0}\tnovastar:1\n\
         3\t{e0}\tnovastar\n\
         \n\
         4\t{e1}\tnovastar\n\
         5\t{e0}\t{e1}\n\
         \n\
         6\t{e1}\tnovastar\n"
    )
}

fn infer_request(head: &str, tail: &str) -> InferRequest {
    InferRequest {
        model: "smoke".to_string(),
        head: head.to_string(),
        tail: tail.to_string(),
        text: format!("fresh reports connect {head} with {tail} in several filings"),
        top_k: 3,
        deadline_ms: Some(2_000),
        ..InferRequest::default()
    }
}

#[test]
fn cold_start_entity_becomes_answerable_after_live_publish() {
    let dir = temp_dir("live");
    let base_path = base_bundle_path(&dir);
    let out_path = dir.join("published.imrb");

    let registry = Arc::new(Registry::new());
    let base = load_bundle(&base_path).expect("base loads");
    registry.insert("smoke", ServingModel::new(base).expect("base validates"));
    let handle = ServeHandle::start(Arc::clone(&registry), EngineConfig::default());

    let names = &fixture().entity_names;
    let (e0, e1) = (names[0].clone(), names[1].clone());

    // Serving is live, but the cold-start entity is unknown to the engine.
    let before = handle.infer(infer_request("novastar", &e0));
    assert!(
        before.is_err(),
        "novastar must be unknown before the stream"
    );

    let source = imre_corpus::LineDeltaSource::new(Cursor::new(delta_text(&e0, &e1).into_bytes()));
    let updater = StreamUpdater::spawn(
        source,
        base_path.clone(),
        Arc::clone(&registry),
        handle.metrics_arc(),
        StreamUpdaterConfig {
            model_name: "smoke".to_string(),
            publish_every: 1,
            build: build_config(),
            out_path: Some(out_path.clone()),
        },
    )
    .expect("updater spawns");

    // Serving keeps answering known entities while the updater ingests.
    let during = handle
        .infer(infer_request(&e0, &e1))
        .expect("known pair answers during streaming");
    assert!(!during.ranked.is_empty());

    let summary = updater.join().expect("stream completes");
    assert_eq!(summary.batches, 3);
    assert!(summary.publishes >= 1, "at least one publish: {summary:?}");
    assert_eq!(summary.entities_admitted, 1);
    assert_eq!(summary.malformed, 0);

    // The cold-start entity now answers through the hot-swapped model.
    let after = handle
        .infer(infer_request("novastar", &e0))
        .expect("novastar answers after live publish");
    assert!(!after.ranked.is_empty());
    assert!(after.ranked[0].score.is_finite());

    // Metrics observed the stream.
    let metrics = handle.metrics_arc();
    assert_eq!(metrics.stream_deltas_applied.load(Ordering::Relaxed), 3);
    assert!(metrics.stream_publishes.load(Ordering::Relaxed) >= 1);
    let stats = handle.stats_text();
    assert!(
        stats.contains("stream:"),
        "stats carries stream line: {stats}"
    );
    assert!(
        !stats.contains("last_publish_age=never"),
        "publish age set: {stats}"
    );

    // The persisted publish is a valid, loadable bundle with the grown table.
    let published = load_bundle(&out_path).expect("published bundle loads");
    assert!(published
        .entities
        .iter()
        .any(|(name, _)| name == "novastar"));
    let emb = published.embedding.as_ref().expect("embedding present");
    assert_eq!(emb.len(), published.entities.len());
    assert!(
        ServingModel::new(published).is_ok(),
        "published bundle validates"
    );

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_batches_are_counted_and_skipped() {
    let dir = temp_dir("malformed");
    let base_path = base_bundle_path(&dir);
    let registry = Arc::new(Registry::new());
    let metrics = Arc::new(imre_serve::Metrics::default());
    let names = &fixture().entity_names;
    let (e0, e1) = (&names[0], &names[1]);

    // Batch 2 has a garbage timestamp; batches 1 and 3 are fine.
    let text = format!("1\t{e0}\t{e1}\n\n notatime\t{e0}\t{e1}\n\n2\t{e0}\t{e1}\n");
    let source = imre_corpus::LineDeltaSource::new(Cursor::new(text.into_bytes()));
    let updater = StreamUpdater::spawn(
        source,
        base_path,
        Arc::clone(&registry),
        Arc::clone(&metrics),
        StreamUpdaterConfig {
            model_name: "smoke".to_string(),
            publish_every: 0, // publish only at end of stream
            build: build_config(),
            out_path: None,
        },
    )
    .expect("updater spawns");
    let summary = updater.join().expect("stream completes despite bad batch");
    assert_eq!(summary.batches, 2, "good batches applied");
    assert_eq!(summary.malformed, 1, "bad batch counted");
    assert_eq!(metrics.stream_malformed.load(Ordering::Relaxed), 1);
    assert!(
        summary.publishes >= 1,
        "end-of-stream publish still happens"
    );
    assert!(
        registry.get("smoke").is_some(),
        "publish registered the refreshed model"
    );
    std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("imre_stream_malformed_{}", std::process::id())),
    )
    .ok();
}

#[test]
fn spawn_rejects_bundle_without_embedding() {
    let dir = temp_dir("noemb");
    let path = dir.join("noemb.imrb");
    // A non-MR model bundles legitimately without an entity embedding; the
    // updater has nothing to refresh there and must fail fast, typed.
    let hp = HyperParams {
        epochs: 1,
        ..HyperParams::tiny()
    };
    let pipeline = Pipeline::build(&smoke_config(5), hp);
    let model = pipeline.train_system(ModelSpec::pa_t(), 11);
    let bundle = Bundle::new(
        model,
        pipeline.dataset.vocab.clone(),
        &pipeline.dataset.world,
        None,
    );
    save_bundle(&bundle, &path).expect("save");
    let source = imre_corpus::LineDeltaSource::new(Cursor::new(Vec::new()));
    let err = StreamUpdater::spawn(
        source,
        path,
        Arc::new(Registry::new()),
        Arc::new(imre_serve::Metrics::default()),
        StreamUpdaterConfig {
            model_name: "smoke".to_string(),
            publish_every: 1,
            build: build_config(),
            out_path: None,
        },
    )
    .err()
    .expect("spawn must fail");
    assert!(matches!(err, StreamUpdateError::NoEmbedding), "got {err}");
    std::fs::remove_dir_all(&dir).ok();
}
