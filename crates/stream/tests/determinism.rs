//! Determinism properties for the streaming pipeline (DESIGN §4i):
//!
//! 1. However a delta corpus is partitioned into batches, the incremental
//!    graph is byte-identical to the single-shot build — edge weights, edge
//!    order, adjacency, counts, and catalog all match exactly.
//! 2. Under `RefreshMode::Canonical` the published embedding is the same
//!    byte-for-byte regardless of partition and of pair-counting thread
//!    count.
//! 3. Under `RefreshMode::Refine` a fixed delta sequence replays to
//!    byte-identical tables (path-dependent across partitions, but
//!    reproducible).

use imre_corpus::stream::{DeltaBatch, LineDeltaSource, StreamSource};
use imre_corpus::synth_delta_text;
use imre_graph::{LineConfig, RefineConfig};
use imre_stream::{RefreshMode, StreamBuild, StreamBuildConfig};
use proptest::prelude::*;
use std::io::Cursor;

fn base_entities(n: usize) -> Vec<(String, Vec<usize>)> {
    (0..n).map(|i| (format!("ent{i}"), vec![i % 5])).collect()
}

fn config(threads: usize, refresh: RefreshMode) -> StreamBuildConfig {
    StreamBuildConfig {
        threshold: 2,
        line: LineConfig {
            dim: 8,
            samples_per_epoch: 800,
            epochs: 1,
            ..Default::default()
        },
        threads,
        refresh,
    }
}

fn batches_of(text: &str) -> Vec<DeltaBatch> {
    let mut src = LineDeltaSource::new(Cursor::new(text.as_bytes().to_vec()));
    let mut out = Vec::new();
    while let Some(b) = src.next_batch().expect("synthetic text parses") {
        out.push(b);
    }
    out
}

/// Re-batches `text` (one event per line, no blanks) by inserting batch
/// boundaries after the line indices in `cuts`.
fn partition_text(text: &str, cuts: &[usize]) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        out.push('\n');
        if cuts.contains(&i) {
            out.push('\n');
        }
    }
    out
}

fn run_build(text: &str, n_base: usize, threads: usize, refresh: RefreshMode) -> StreamBuild {
    let mut build = StreamBuild::new(&base_entities(n_base), 38, config(threads, refresh));
    for batch in batches_of(text) {
        build.apply_batch(batch).expect("batch applies");
    }
    build
}

type EdgeBits = Vec<(usize, usize, u32)>;

fn graph_fingerprint(build: &StreamBuild) -> (usize, EdgeBits, EdgeBits) {
    let g = build.graph();
    let edges = g
        .edges()
        .iter()
        .map(|&(u, v, w)| (u, v, w.to_bits()))
        .collect();
    let counts = g.counts().iter().map(|(&(a, b), &c)| (a, b, c)).collect();
    (g.n_vertices(), edges, counts)
}

/// Strategy: a synthetic event stream plus a random set of batch cuts.
fn corpus_and_cuts() -> impl Strategy<Value = (String, Vec<usize>, usize)> {
    (4usize..9, 8usize..28, 0u64..1000).prop_flat_map(|(n_entities, events, seed)| {
        let names: Vec<String> = (0..n_entities).map(|i| format!("ent{i}")).collect();
        let text = synth_delta_text(&names, 1, events, seed);
        let cuts = proptest::collection::vec(0..events.saturating_sub(1), 0..5);
        (Just(text), cuts, Just(n_entities))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_partition_matches_single_shot_bitwise((text, cuts, n_base) in corpus_and_cuts()) {
        let split = partition_text(&text, &cuts);

        let mut single = run_build(&text, n_base, 1, RefreshMode::Canonical);
        let mut parts = run_build(&split, n_base, 1, RefreshMode::Canonical);

        // graph: vertices, edge weights (bitwise), merged counts
        prop_assert_eq!(graph_fingerprint(&single), graph_fingerprint(&parts));
        // adjacency comes out identical too (snapshot rebuilds from edges)
        let gs = single.graph().snapshot();
        let gp = parts.graph().snapshot();
        for v in 0..gs.n_vertices() {
            let a: Vec<(usize, u32)> = gs.neighbors(v).iter().map(|&(u, w)| (u, w.to_bits())).collect();
            let b: Vec<(usize, u32)> = gp.neighbors(v).iter().map(|&(u, w)| (u, w.to_bits())).collect();
            prop_assert_eq!(a, b, "adjacency of vertex {}", v);
        }
        // catalog: same entities in the same order
        prop_assert_eq!(single.catalog().entries(), parts.catalog().entries());

        // canonical embedding: byte-identical across the partition
        if single.graph().n_edges() > 0 {
            let es = single.embedding().expect("single-shot embedding");
            let ep = parts.embedding().expect("partitioned embedding");
            let bits_s: Vec<u32> = es.matrix().data().iter().map(|x| x.to_bits()).collect();
            let bits_p: Vec<u32> = ep.matrix().data().iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(bits_s, bits_p);
        }
    }

    #[test]
    fn thread_count_never_changes_the_artifact((text, cuts, n_base) in corpus_and_cuts()) {
        let split = partition_text(&text, &cuts);
        let mut one = run_build(&split, n_base, 1, RefreshMode::Canonical);
        let mut four = run_build(&split, n_base, 4, RefreshMode::Canonical);
        prop_assert_eq!(graph_fingerprint(&one), graph_fingerprint(&four));
        if one.graph().n_edges() > 0 {
            let a = one.embedding().expect("threads=1 embedding");
            let b = four.embedding().expect("threads=4 embedding");
            let bits_a: Vec<u32> = a.matrix().data().iter().map(|x| x.to_bits()).collect();
            let bits_b: Vec<u32> = b.matrix().data().iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(bits_a, bits_b);
        }
    }

    #[test]
    fn refine_replay_is_byte_reproducible((text, cuts, n_base) in corpus_and_cuts()) {
        let split = partition_text(&text, &cuts);
        let rc = RefineConfig { samples: 200, lr: 0.015, negatives: 4 };
        let run = || {
            let mut b = run_build(&split, n_base, 2, RefreshMode::Refine(rc.clone()));
            if b.graph().n_edges() == 0 {
                return None;
            }
            let e = b.embedding().expect("refined embedding");
            Some(e.matrix().data().iter().map(|x| x.to_bits()).collect::<Vec<u32>>())
        };
        prop_assert_eq!(run(), run());
    }
}
