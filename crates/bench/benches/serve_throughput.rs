//! Serving-engine saturation throughput: requests/sec as a function of the
//! micro-batch bound and worker count.
//!
//! The benchmark trains one smoke-scale PA-TMR model, freezes it into a
//! [`imre_serve::Bundle`], and then pushes saturation bursts through the
//! engine. On a single core the win from `batch_max > 1` comes from
//! amortization, not parallelism: one scheduler wakeup, one registry
//! resolution, and one reused inference tape per *batch* instead of per
//! *request*.
//!
//! After the timed groups it prints a requests/sec summary and the engine's
//! per-stage latency histogram dump (queue wait / featurize / forward).
//!
//! Honors `CRITERION_SAMPLE_MS` for a quick CI smoke run.

use criterion::{criterion_group, BenchmarkId, Criterion};
use imre_core::{HyperParams, ModelSpec};
use imre_eval::{smoke_config, Pipeline};
use imre_graph::EntityEmbedding;
use imre_serve::{EngineConfig, InferRequest, Registry, ServeHandle, ServingModel};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Requests per saturation burst. Larger than any `batch_max` under test so
/// the coalescing window always fills.
const BURST: usize = 64;

struct Fixture {
    registry: Arc<Registry>,
    requests: Vec<InferRequest>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hp = HyperParams {
            epochs: 1,
            ..HyperParams::tiny()
        };
        let pipeline = Pipeline::build(&smoke_config(9), hp);
        let model = pipeline.train_system(ModelSpec::pa_tmr(), 13);
        let embedding = EntityEmbedding::from_matrix(pipeline.embedding.matrix().clone());
        let bundle = imre_serve::Bundle::new(
            model,
            pipeline.dataset.vocab.clone(),
            &pipeline.dataset.world,
            Some(embedding),
        );
        let serving = ServingModel::new(bundle).expect("bundle validates");
        let names: Vec<String> = serving
            .bundle()
            .entities
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        let requests = (0..BURST)
            .map(|i| {
                let head = names[i % names.len()].clone();
                let tail = names[(i * 7 + 3) % names.len()].clone();
                let text = format!("records show {head} associated with {tail} in the region");
                InferRequest {
                    model: "smoke".to_string(),
                    head,
                    tail,
                    text,
                    top_k: 3,
                    deadline_ms: None,
                    ..InferRequest::default()
                }
            })
            .collect();
        let registry = Arc::new(Registry::new());
        registry.insert("smoke", serving);
        Fixture { registry, requests }
    })
}

fn engine(workers: usize, batch_max: usize) -> ServeHandle {
    ServeHandle::start(
        Arc::clone(&fixture().registry),
        EngineConfig {
            workers,
            batch_max,
            batch_deadline: Duration::from_millis(1),
            queue_capacity: 2 * BURST,
            default_deadline_ms: None,
            ..EngineConfig::default()
        },
    )
}

/// Submits the whole burst up front (saturating the queue), then waits for
/// every reply. Returns the number of requests served.
fn burst(handle: &ServeHandle) -> usize {
    let pending: Vec<_> = fixture()
        .requests
        .iter()
        .map(|r| handle.submit(r.clone()).expect("submit"))
        .collect();
    let n = pending.len();
    for p in pending {
        p.wait().expect("reply");
    }
    n
}

fn bench_batch_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput/batch");
    for &batch_max in &[1usize, 4, 8, 16] {
        let handle = engine(1, batch_max);
        group.bench_with_input(
            BenchmarkId::new("burst64/batch", batch_max),
            &batch_max,
            |b, _| {
                b.iter(|| std::hint::black_box(burst(&handle)));
            },
        );
        handle.shutdown();
    }
    group.finish();
}

fn bench_worker_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput/workers");
    for &workers in &[1usize, 2, 4] {
        let handle = engine(workers, 8);
        group.bench_with_input(
            BenchmarkId::new("burst64/workers", workers),
            &workers,
            |b, _| {
                b.iter(|| std::hint::black_box(burst(&handle)));
            },
        );
        handle.shutdown();
    }
    group.finish();
}

/// Non-criterion summary: measured requests/sec per batch bound, plus the
/// per-stage histogram dump from a fresh engine after one sustained run.
/// With `IMRE_BENCH_JSON` set, the req/s numbers are also written as flat
/// JSON for the `scripts/bench_check.sh` regression gate.
fn print_summary() {
    println!("\n=== serve_throughput summary (burst = {BURST}, workers = 1) ===");
    let mut sink = imre_bench::MetricSink::new();
    let mut rps_b1 = 0.0f64;
    for &batch_max in &[1usize, 8] {
        let handle = engine(1, batch_max);
        burst(&handle); // warm up
        burst(&handle);
        // Warm-up boundary for the steady-state alloc metric: the two bursts
        // above pushed every distinct request shape through the worker's
        // arena, so from here on the pool-miss counter must not move.
        let alloc_before = {
            let m = handle.metrics();
            let o = std::sync::atomic::Ordering::Relaxed;
            (
                m.pool_misses.load(o),
                m.pool_hits.load(o),
                m.pool_bytes_recycled.load(o),
            )
        };
        // Best sample mean (same statistic criterion uses): each sample
        // averages several bursts, which is stabler than a single-burst min.
        let (samples, bursts_per_sample) = (5, 8);
        let mut best = Duration::MAX;
        let mut served = 0;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..bursts_per_sample {
                served += burst(&handle);
            }
            best = best.min(start.elapsed() / bursts_per_sample);
        }
        let rps = BURST as f64 / best.as_secs_f64();
        sink.record(&format!("serve_rps_batch{batch_max}"), rps);
        if batch_max == 1 {
            rps_b1 = rps;
        }
        let speedup = if batch_max == 1 {
            String::new()
        } else {
            sink.record(
                &format!("info_serve_speedup_batch{batch_max}"),
                rps / rps_b1,
            );
            format!("  ({:.2}x vs batch=1)", rps / rps_b1)
        };
        println!("batch_max={batch_max:>2}  {rps:>9.1} req/s{speedup}");
        if batch_max == 8 {
            println!(
                "\n--- engine stats after {} requests ---",
                served + 2 * BURST
            );
            println!("{}", handle.stats_text());
            // Lifecycle counters ride along as informational keys so the
            // regression gate's artifact records whether the run shed work
            // (it never should at this queue depth — both stay 0).
            let m = handle.metrics();
            sink.record(
                "info_serve_deadline_expired",
                m.deadline_expired
                    .load(std::sync::atomic::Ordering::Relaxed) as f64,
            );
            sink.record(
                "info_serve_shed",
                m.shed.load(std::sync::atomic::Ordering::Relaxed) as f64,
            );
            // Steady-state allocation budget: fresh buffer allocations per
            // request across the timed window. Gated lower-is-better
            // against a committed baseline of exactly 0.
            let o = std::sync::atomic::Ordering::Relaxed;
            let steady_misses = m.pool_misses.load(o) - alloc_before.0;
            let steady_hits = m.pool_hits.load(o) - alloc_before.1;
            let steady_bytes = m.pool_bytes_recycled.load(o) - alloc_before.2;
            let allocs_per_request = steady_misses as f64 / served as f64;
            sink.record("serve_allocs_per_request_steady", allocs_per_request);
            sink.record(
                "info_serve_pool_hits_per_request",
                steady_hits as f64 / served as f64,
            );
            sink.record(
                "info_serve_bytes_recycled_per_request",
                steady_bytes as f64 / served as f64,
            );
            println!(
                "steady-state alloc telemetry: {allocs_per_request:.4} allocs/req, \
                 {:.1} pool hits/req, {:.0} bytes recycled/req over {served} requests",
                steady_hits as f64 / served as f64,
                steady_bytes as f64 / served as f64,
            );
        }
        handle.shutdown();
    }
    sink.write_if_requested();
}

criterion_group!(benches, bench_batch_bound, bench_worker_count);

fn main() {
    // Pin the compute pool to one thread before any tensor op initialises
    // it lazily: the steady-state alloc gate needs an exact warm-up
    // boundary (with racy multi-thread task claiming, a cold thread-local
    // buffer stash could legitimately miss long after warm-up). At this
    // smoke scale the tensors sit below the parallel-dispatch grain anyway,
    // so the req/s numbers are unaffected.
    std::env::set_var("IMRE_THREADS", "1");
    benches();
    print_summary();
}
