//! **Table IV** — the headline comparison: AUC, precision, recall, F1,
//! P@100 and P@200 for PCNN, PCNN+ATT, BGWA, CNN+RL and the paper's PA-T /
//! PA-MR / PA-TMR on both datasets.
//!
//! Absolute numbers differ from the paper (simulated corpora, scaled
//! widths); the orderings the paper argues from — attention > plain PCNN,
//! every PA-variant > PCNN+ATT, PA-TMR best — are the reproduction target.
//! `IMRE_SEEDS=5` matches the paper's five-run averaging.

use imre_bench::{build_pipeline, dataset_configs, header, seeds};
use imre_core::baselines::{CnnRl, RlConfig};
use imre_core::ModelSpec;
use imre_eval::{
    evaluate_system, format_table, mean_evaluation, metric, metric2, Evaluation, Pipeline,
};
use std::time::Instant;

fn run_cnn_rl(p: &Pipeline, seed: u64) -> Evaluation {
    let mut rl = CnnRl::new(
        &p.hp,
        p.dataset.vocab.len(),
        p.dataset.num_relations(),
        seed,
    );
    let cfg = RlConfig {
        pretrain_epochs: p.hp.epochs / 2,
        joint_epochs: p.hp.epochs - p.hp.epochs / 2,
        batch_size: p.hp.batch_size,
        seed,
        ..Default::default()
    };
    rl.classifier.set_word_embeddings(p.word_vectors.clone());
    let ctx = p.ctx();
    rl.train(&p.train_bags, &ctx, &cfg);
    evaluate_system(&p.test_bags, p.dataset.num_relations(), |bag| {
        rl.predict(bag, &ctx)
    })
}

fn main() {
    header("Table IV: performance comparison", "paper Table IV");
    let seed_list = seeds();
    let specs = [
        ModelSpec::pcnn(),
        ModelSpec::pcnn_att(),
        ModelSpec::bgwa(),
        ModelSpec::pa_t(),
        ModelSpec::pa_mr(),
        ModelSpec::pa_tmr(),
    ];

    for config in dataset_configs() {
        let t0 = Instant::now();
        let p = build_pipeline(&config);
        println!("\n[{}] pipeline built in {:?}", config.name, t0.elapsed());
        let mut rows = Vec::new();
        let t = Instant::now();
        let all_evals = p.run_systems_parallel(&specs, &seed_list);
        println!(
            "  {} systems × {} seed(s) trained in {:?}",
            specs.len(),
            seed_list.len(),
            t.elapsed()
        );
        for (spec, evals) in specs.iter().zip(&all_evals) {
            let m = mean_evaluation(evals);
            println!("  {}: auc {:.4}", spec.name(), m.auc);
            rows.push(vec![
                spec.name(),
                metric(m.auc),
                metric(m.precision),
                metric(m.recall),
                metric(m.f1),
                metric2(m.p_at_100),
                metric2(m.p_at_200),
            ]);
        }
        // CNN+RL has its own trainer
        let t = Instant::now();
        let rl_evals: Vec<Evaluation> = seed_list.iter().map(|&s| run_cnn_rl(&p, s)).collect();
        let m = mean_evaluation(&rl_evals);
        println!("  CNN+RL done in {:?} (auc {:.4})", t.elapsed(), m.auc);
        rows.insert(
            3,
            vec![
                "CNN+RL".to_string(),
                metric(m.auc),
                metric(m.precision),
                metric(m.recall),
                metric(m.f1),
                metric2(m.p_at_100),
                metric2(m.p_at_200),
            ],
        );
        println!(
            "\n{}",
            format_table(
                &format!("Table IV — {} ({} seed(s))", config.name, seed_list.len()),
                &[
                    "method",
                    "AUC",
                    "Precision",
                    "Recall",
                    "F1",
                    "P@100",
                    "P@200"
                ],
                &rows,
            )
        );
    }
    println!("paper (NYT): PCNN .3296 < PCNN+ATT .3424 < BGWA .3670 < CNN+RL .3735; PA-T .3572, PA-MR .3635, PA-TMR .3939");
    println!("paper (GDS): PCNN .7798 < PCNN+ATT .8034 < BGWA .8148 < CNN+RL .8554; PA-T .8512, PA-MR .8571, PA-TMR .8646");
}
