//! **Figure 6** — F1 of test pairs bucketed by their co-occurrence
//! frequency *in the unlabeled corpus* (quantiles), PA-TMR vs PCNN+ATT.
//!
//! The paper's findings: F1 rises with co-occurrence frequency, PA-TMR
//! leads everywhere, and the gain is larger on the smaller GDS dataset.

use imre_bench::{build_pipeline, dataset_configs, header, seeds};
use imre_core::ModelSpec;
use imre_eval::{f1_by_cooccurrence_quantile, format_table};

fn main() {
    header(
        "Figure 6: F1 by unlabeled-corpus co-occurrence quantile",
        "paper Fig. 6",
    );
    let seed = seeds()[0];
    const BUCKETS: usize = 5;

    for config in dataset_configs() {
        let p = build_pipeline(&config);
        let base = p.train_system(ModelSpec::pcnn_att(), seed);
        let full = p.train_system(ModelSpec::pa_tmr(), seed);
        let ctx = p.ctx();
        let base_f1 =
            f1_by_cooccurrence_quantile(&p.test_bags, &p.co, BUCKETS, |b| base.predict(b, &ctx));
        let full_f1 =
            f1_by_cooccurrence_quantile(&p.test_bags, &p.co, BUCKETS, |b| full.predict(b, &ctx));
        let rows: Vec<Vec<String>> = base_f1
            .iter()
            .zip(&full_f1)
            .map(|((label, b), (_, f))| {
                vec![
                    label.clone(),
                    format!("{b:.4}"),
                    format!("{f:.4}"),
                    format!("{:+.4}", f - b),
                ]
            })
            .collect();
        println!(
            "\n{}",
            format_table(
                &format!("Figure 6 — {} (co-occurrence quantile → F1)", config.name),
                &["quantile", "PCNN+ATT", "PA-TMR", "Δ"],
                &rows,
            )
        );
    }
    println!("(paper: F1 trends upward with co-occurrence frequency; improvement larger on the small dataset)");
}
