//! Serving throughput and footprint of the int8 quantized inference path.
//!
//! The benchmark registers two PA-TMR bundles over one smoke corpus:
//! `"scaled"` — paper-dimension weights (untrained; throughput does not
//! care) that the saturation bursts are measured against, and `"smoke"` —
//! a trained tiny model for the accuracy-drift report. Both carry their
//! per-row int8 copy (a version-3 [`imre_serve::Bundle`]), and bursts run
//! through two engines over the same registry — one at `--precision f32`,
//! one at `--precision int8`.
//!
//! Gated metrics (`scripts/bench_check.sh`):
//!   - `quant_serve_rps` — int8 saturation req/s;
//!   - `floor_quant_vs_f32_rps` — int8-over-f32 throughput ratio, floored
//!     at parity: quantized serving must never be slower than f32;
//!   - `quant_bytes_per_model` — weight bytes of the int8 model at paper
//!     dimensions (lower is better);
//!   - `floor_f32_vs_quant_bytes` — f32-over-int8 byte ratio at paper
//!     dimensions; ~4x for wide tables, committed ≥ 3x (the "≤ ~30% of the
//!     f32 footprint" claim with per-row parameter overhead included).
//!
//! Informational: `info_quant_max_score_drift` and the P@N/AUC deltas of
//! int8 vs f32 on the held-out smoke split (the hard accuracy gate runs in
//! `scripts/ci.sh quant` via `imre quantize --check`), plus
//! `info_quant_rss_kb` (resident set after both engines served).
//!
//! Honors `CRITERION_SAMPLE_MS` for a quick CI smoke run.

use criterion::{criterion_group, BenchmarkId, Criterion};
use imre_core::{entity_type_table, HyperParams, ModelSpec, QuantModel, QuantScratch, ReModel};
use imre_eval::{evaluate_system, smoke_config, Pipeline};
use imre_graph::EntityEmbedding;
use imre_serve::{EngineConfig, InferRequest, Precision, Registry, ServeHandle, ServingModel};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Requests per saturation burst (matches `serve_throughput`).
const BURST: usize = 64;

struct Fixture {
    pipeline: Pipeline,
    registry: Arc<Registry>,
    requests: Vec<InferRequest>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hp = HyperParams {
            epochs: 1,
            ..HyperParams::tiny()
        };
        let pipeline = Pipeline::build(&smoke_config(9), hp);
        let model = pipeline.train_system(ModelSpec::pa_tmr(), 13);
        let num_types = model.num_types();
        let embedding = EntityEmbedding::from_matrix(pipeline.embedding.matrix().clone());
        let quant = QuantModel::from_model(&model, Some(&embedding)).expect("quantizes");
        let bundle = imre_serve::Bundle::new(
            model,
            pipeline.dataset.vocab.clone(),
            &pipeline.dataset.world,
            Some(embedding),
        )
        .with_quant(quant);
        let serving = ServingModel::new(bundle).expect("bundle validates");

        // Paper-dimension weights over the same vocab/world: the bursts
        // measure forward-pass throughput at realistic matrix sizes, where
        // the i8 kernels amortise their activation-quantization overhead.
        let world = &pipeline.dataset.world;
        let hp_scaled = HyperParams::scaled();
        let scaled_model = ReModel::new(
            ModelSpec::pa_tmr(),
            &hp_scaled,
            pipeline.dataset.vocab.len(),
            world.num_relations(),
            num_types,
            hp_scaled.entity_dim,
            17,
        );
        let mut rng = imre_tensor::TensorRng::seed(17);
        let scaled_emb = EntityEmbedding::from_matrix(imre_tensor::Tensor::rand_uniform(
            &[world.num_entities(), hp_scaled.entity_dim],
            -0.5,
            0.5,
            &mut rng,
        ));
        let scaled_quant =
            QuantModel::from_model(&scaled_model, Some(&scaled_emb)).expect("quantizes");
        let scaled_bundle = imre_serve::Bundle::new(
            scaled_model,
            pipeline.dataset.vocab.clone(),
            world,
            Some(scaled_emb),
        )
        .with_quant(scaled_quant);
        let scaled_serving = ServingModel::new(scaled_bundle).expect("bundle validates");

        let names: Vec<String> = scaled_serving
            .bundle()
            .entities
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        let requests = (0..BURST)
            .map(|i| {
                let head = names[i % names.len()].clone();
                let tail = names[(i * 7 + 3) % names.len()].clone();
                let text = format!(
                    "records from the annual regional survey of the territory show \
                     that {head} is closely associated with {tail} across the region \
                     and the neighbouring districts according to several reports"
                );
                InferRequest {
                    model: "scaled".to_string(),
                    head,
                    tail,
                    text,
                    top_k: 3,
                    deadline_ms: None,
                    ..InferRequest::default()
                }
            })
            .collect();
        let registry = Arc::new(Registry::new());
        registry.insert("smoke", serving);
        registry.insert("scaled", scaled_serving);
        Fixture {
            pipeline,
            registry,
            requests,
        }
    })
}

fn engine(precision: Precision) -> ServeHandle {
    ServeHandle::start(
        Arc::clone(&fixture().registry),
        EngineConfig {
            workers: 1,
            batch_max: 8,
            batch_deadline: Duration::from_millis(1),
            queue_capacity: 2 * BURST,
            default_deadline_ms: None,
            precision,
            ..EngineConfig::default()
        },
    )
}

/// Submits the whole burst up front, then waits for every reply.
fn burst(handle: &ServeHandle, requests: &[InferRequest]) -> usize {
    let pending: Vec<_> = requests
        .iter()
        .map(|r| handle.submit(r.clone()).expect("submit"))
        .collect();
    let n = pending.len();
    for p in pending {
        p.wait().expect("reply");
    }
    n
}

/// Best-of saturation req/s for one precision.
fn measure_rps(precision: Precision) -> f64 {
    let handle = engine(precision);
    let requests = &fixture().requests;
    burst(&handle, requests); // warm up
    burst(&handle, requests);
    let (samples, bursts_per_sample) = (5, 8);
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..bursts_per_sample {
            burst(&handle, requests);
        }
        best = best.min(start.elapsed() / bursts_per_sample);
    }
    handle.shutdown();
    BURST as f64 / best.as_secs_f64()
}

/// Resident set size in kB from /proc (0 where unavailable).
fn rss_kb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

fn bench_precision(c: &mut Criterion) {
    let mut group = c.benchmark_group("quant_serve/precision");
    for precision in [Precision::F32, Precision::Int8] {
        let handle = engine(precision);
        let requests = &fixture().requests;
        group.bench_with_input(
            BenchmarkId::new("burst64", precision.as_str()),
            &precision,
            |b, _| {
                b.iter(|| std::hint::black_box(burst(&handle, requests)));
            },
        );
        handle.shutdown();
    }
    group.finish();
}

/// Non-criterion summary: int8 vs f32 req/s, footprint at paper dimensions,
/// and the accuracy drift of the quantized path. With `IMRE_BENCH_JSON`
/// set, everything is written as flat JSON for the `scripts/bench_check.sh`
/// regression gate.
fn print_summary() {
    println!("\n=== quant_serve summary (burst = {BURST}, workers = 1, batch_max = 8) ===");
    let mut sink = imre_bench::MetricSink::new();

    // Throughput: int8 must hold parity with (in practice: beat) f32.
    let f32_rps = measure_rps(Precision::F32);
    let int8_rps = measure_rps(Precision::Int8);
    sink.record("quant_serve_rps", int8_rps);
    sink.record("floor_quant_vs_f32_rps", int8_rps / f32_rps);
    println!("f32   {f32_rps:>9.1} req/s");
    println!(
        "int8  {int8_rps:>9.1} req/s  ({:.2}x vs f32)",
        int8_rps / f32_rps
    );

    // Footprint of the model the bursts actually serve (paper dimensions).
    // `bytes()` counts the quantized entity table, so the f32 side counts
    // its embedding scalars too.
    let fx = fixture();
    let scaled = fx.registry.get("scaled").expect("registered");
    let sb = scaled.bundle();
    let q_bytes = sb.quant.as_ref().expect("v3 bundle").bytes() as f64;
    let emb_scalars = sb.embedding.as_ref().map_or(0, |e| e.matrix().data().len());
    let f32_bytes = ((sb.model.store.num_scalars() + emb_scalars) * 4) as f64;
    sink.record("quant_bytes_per_model", q_bytes);
    sink.record("floor_f32_vs_quant_bytes", f32_bytes / q_bytes);
    println!(
        "bytes/model at paper dims: f32 {f32_bytes:.0} → int8 {q_bytes:.0} \
         ({:.1}% of f32, {:.2}x smaller)",
        q_bytes / f32_bytes * 100.0,
        f32_bytes / q_bytes
    );

    // Accuracy drift on the held-out smoke split (informational here; the
    // hard gate is `imre quantize --check` in scripts/ci.sh).
    let fx = fixture();
    let serving = fx.registry.get("smoke").expect("registered");
    let b = serving.bundle();
    let types = entity_type_table(&fx.pipeline.dataset.world);
    let ctx = imre_core::BagContext {
        entity_embedding: b.embedding.as_ref(),
        entity_types: &types,
    };
    let qm = b.quant.as_ref().expect("v3 bundle");
    let nr = b.relations.len();
    let mut scratch = QuantScratch::new();
    let mut drift = 0.0f32;
    let mut q_scores = Vec::with_capacity(fx.pipeline.test_bags.len());
    for bag in &fx.pipeline.test_bags {
        let f = b.model.predict(bag, &ctx);
        let mut q = vec![0.0f32; nr];
        qm.predict_quant_into(bag, &types, &mut scratch, &mut q, None);
        for (a, c) in f.iter().zip(&q) {
            drift = drift.max((a - c).abs());
        }
        q_scores.push(q);
    }
    let f32_ev = evaluate_system(&fx.pipeline.test_bags, nr, |bag| b.model.predict(bag, &ctx));
    let mut it = q_scores.into_iter();
    let q_ev = evaluate_system(&fx.pipeline.test_bags, nr, |_| it.next().expect("scored"));
    sink.record("info_quant_max_score_drift", drift as f64);
    sink.record("info_quant_auc_delta", (q_ev.auc - f32_ev.auc) as f64);
    sink.record(
        "info_quant_p_at_100_delta",
        (q_ev.p_at_100 - f32_ev.p_at_100) as f64,
    );
    sink.record(
        "info_quant_p_at_300_delta",
        (q_ev.p_at_300 - f32_ev.p_at_300) as f64,
    );
    println!(
        "drift vs f32 over {} bags: max |Δscore| {drift:.6}, ΔAUC {:+.4}, \
         ΔP@100 {:+.4}, ΔP@300 {:+.4}",
        fx.pipeline.test_bags.len(),
        q_ev.auc - f32_ev.auc,
        q_ev.p_at_100 - f32_ev.p_at_100,
        q_ev.p_at_300 - f32_ev.p_at_300
    );

    sink.record("info_quant_rss_kb", rss_kb());
    sink.write_if_requested();
}

criterion_group!(benches, bench_precision);

fn main() {
    // Pin the compute pool to one thread before any tensor op initialises
    // it lazily (see serve_throughput.rs for the rationale).
    std::env::set_var("IMRE_THREADS", "1");
    benches();
    print_summary();
}
