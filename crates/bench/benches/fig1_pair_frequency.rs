//! **Figure 1** — number of entity pairs per co-occurrence-frequency band
//! in the distant-supervision training corpora (log-scale y in the paper).
//!
//! The paper's observation: >90 % of GDS pairs (and even more of NYT's)
//! have fewer than 10 training sentences — the long tail that motivates
//! mining implicit mutual relations. This bench prints the same histogram
//! for the simulated corpora.

use imre_bench::{dataset_configs, header};
use imre_corpus::stats::{fig1_bands, pair_frequency_histogram};
use imre_corpus::Dataset;

fn main() {
    header(
        "Figure 1: entity pairs per training-sentence-count band",
        "paper Fig. 1",
    );
    for config in dataset_configs() {
        let ds = Dataset::generate(&config);
        let hist = pair_frequency_histogram(&ds.train, &fig1_bands());
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        println!("\n[{}] training pairs: {total}", ds.name);
        println!(
            "{:<10} {:>10} {:>9} {:>12}",
            "band", "pairs", "share", "log10(pairs)"
        );
        for (label, count) in &hist {
            let share = 100.0 * *count as f32 / total.max(1) as f32;
            let log = if *count > 0 {
                (*count as f32).log10()
            } else {
                f32::NEG_INFINITY
            };
            println!("{label:<10} {count:>10} {share:>8.1}% {log:>12.2}");
        }
        let short = hist[0].1 + hist[1].1;
        println!(
            "pairs with <11 sentences: {:.1}% (paper: >90% on GDS, more on NYT)",
            100.0 * short as f32 / total.max(1) as f32
        );
    }
}
