//! Front-end concurrency sweep: requests/sec over real TCP as the number of
//! concurrent connections grows from 10 to 10 000, for both front-end
//! implementations (the epoll event loop and thread-per-connection).
//!
//! Each rung connects N clients, runs ping waves (every client writes one
//! request, then every reply is read back and checked), and reports
//! `N * waves / elapsed` req/s. Pings deliberately bypass the inference
//! engine: this bench isolates the *front end* — readiness multiplexing,
//! framing, and reply delivery — from model cost, which
//! `serve_throughput` already covers.
//!
//! Leak accounting is part of the bench contract, not a side check: every
//! rung asserts that the process file-descriptor count and thread count
//! return to their pre-rung baseline after `stop()`, and every event-loop
//! rung asserts the front end ran on exactly ONE thread even with 10 000
//! connections open. The thread-per-connection path is only swept to 256
//! connections — beyond that its per-client threads are the bottleneck
//! being replaced, which is the point of the comparison ratio
//! (`floor_serve_epoll_vs_threads_c256` gates the event loop staying within
//! tolerance of the threaded path at moderate scale; it must never fall
//! behind by more than the gate's margin).
//!
//! Honors `CRITERION_SAMPLE_MS` (default 100): wave count scales with it,
//! and the big rung drops from 10 000 to 1 000 connections below 10 ms so
//! the CI smoke stays fast (logged, never silent). With `IMRE_BENCH_JSON`
//! set, req/s numbers and the epoll-vs-threads ratio are written for the
//! `scripts/bench_check.sh` regression gate.

#[cfg(not(target_os = "linux"))]
fn main() {
    // The sweep leans on linux-only plumbing: the epoll front end itself,
    // `raise_nofile_limit`, and `/proc`-based leak accounting. Still write
    // an (empty) metrics file so `scripts/bench_check.sh` can merge it.
    println!("serve_concurrency: skipped (linux-only bench)");
    imre_bench::MetricSink::new().write_if_requested();
}

#[cfg(target_os = "linux")]
fn main() {
    linux::main();
}

#[cfg(target_os = "linux")]
mod linux {
    use imre_serve::{
        raise_nofile_limit, EngineConfig, FrontendConfig, FrontendKind, Registry, ServeHandle,
        TcpServer,
    };
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// The full wire reply to `ping`: the payload line plus the empty
    /// terminator. Fixed-size, so clients read with `read_exact` instead of
    /// per-connection buffered readers (10 000 `BufReader`s would cost 80 MB).
    const PONG: &[u8] = b"ok pong\n\n";

    fn sample_ms() -> u64 {
        std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(100)
    }

    /// Open file descriptors of this process (including the one `read_dir`
    /// itself holds — constant, so before/after deltas are exact).
    fn proc_fds() -> usize {
        std::fs::read_dir("/proc/self/fd")
            .expect("/proc/self/fd")
            .count()
    }

    /// Live threads of this process, from `/proc/self/status`.
    fn proc_threads() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("Threads: line")
    }

    /// Polls until `probe` holds or `limit` elapses; returns whether it held.
    /// Thread/fd teardown after `stop()` is prompt but not synchronous with the
    /// call returning, so leak checks poll briefly instead of racing it.
    fn settles(limit: Duration, mut probe: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while !probe() {
            if start.elapsed() > limit {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        true
    }

    /// One ping wave: write a request on every connection, then read back and
    /// verify every reply.
    fn wave(conns: &mut [TcpStream]) {
        for (i, c) in conns.iter_mut().enumerate() {
            c.write_all(b"ping\n")
                .unwrap_or_else(|e| panic!("conn {i}: write ping: {e}"));
        }
        let mut buf = [0u8; PONG.len()];
        for (i, c) in conns.iter_mut().enumerate() {
            c.read_exact(&mut buf)
                .unwrap_or_else(|e| panic!("conn {i}: read pong: {e}"));
            assert_eq!(buf, PONG, "conn {i}: bad reply");
        }
    }

    struct Rung {
        rps: f64,
        /// Threads the front end added while all connections were open.
        frontend_threads: usize,
    }

    /// Spawns a fresh engine + server, connects `clients`, times `waves` ping
    /// waves, then tears everything down and asserts nothing leaked.
    fn run_rung(frontend: FrontendKind, clients: usize, waves: usize) -> Rung {
        let fds_before = proc_fds();
        let threads_before = proc_threads();

        let handle = ServeHandle::start(
            Arc::new(Registry::new()),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let threads_engine = proc_threads();
        let cfg = FrontendConfig {
            frontend,
            max_connections: clients + 16,
            ..FrontendConfig::default()
        };
        let mut server = TcpServer::spawn_with(handle.clone(), "127.0.0.1:0", cfg).expect("bind");
        let mut conns: Vec<TcpStream> = (0..clients)
            .map(|i| {
                let s = TcpStream::connect(server.local_addr())
                    .unwrap_or_else(|e| panic!("connect {i}: {e}"));
                s.set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                s.set_nodelay(true).ok();
                s
            })
            .collect();

        // Warm wave (untimed): proves every connection was admitted and is
        // answering before the clock starts.
        wave(&mut conns);
        let frontend_threads = proc_threads() - threads_engine;

        let start = Instant::now();
        for _ in 0..waves {
            wave(&mut conns);
        }
        let rps = (clients * waves) as f64 / start.elapsed().as_secs_f64();

        drop(conns);
        server.stop();
        // The server struct itself holds the waker pipe's write end; drop
        // it so the fd accounting below sees a fully torn-down front end.
        drop(server);
        handle.shutdown();

        // The leak contract: fds and threads must return to the pre-rung
        // baseline once the server is stopped and the engine shut down.
        assert!(
            settles(Duration::from_secs(5), || proc_fds() <= fds_before),
            "{frontend:?}/{clients}: leaked fds ({} before, {} after stop)",
            fds_before,
            proc_fds()
        );
        assert!(
            settles(Duration::from_secs(5), || proc_threads() <= threads_before),
            "{frontend:?}/{clients}: leaked threads ({} before, {} after stop)",
            threads_before,
            proc_threads()
        );
        Rung {
            rps,
            frontend_threads,
        }
    }

    pub fn main() {
        let sample_ms = sample_ms();
        let waves = (sample_ms / 10).clamp(2, 20) as usize;
        let big_clients = if sample_ms >= 10 {
            10_000
        } else {
            println!("serve_concurrency: CRITERION_SAMPLE_MS={sample_ms} < 10 — big rung scaled down to 1000 connections");
            1_000
        };
        let big_waves = (waves / 5).max(1);

        println!("=== serve_concurrency (waves = {waves}, big rung = {big_clients} conns) ===");
        println!(
            "{:>8}  {:>10}  {:>12}  {:>16}",
            "clients", "frontend", "req/s", "frontend threads"
        );
        let mut sink = imre_bench::MetricSink::new();

        // Moderate rungs, both front ends. At 256 the pair is interleaved and
        // best-of-3 so the comparison ratio is not skewed by a one-off
        // scheduler stall on either side (each rung is a fresh engine +
        // server + connection set, so rounds are independent).
        let best = |frontend: FrontendKind, clients: usize, rounds: usize| -> Rung {
            let mut best = run_rung(frontend, clients, waves);
            for _ in 1..rounds {
                let r = run_rung(frontend, clients, waves);
                if r.rps > best.rps {
                    best = r;
                }
            }
            println!(
                "{clients:>8}  {frontend:>10?}  {:>12.1}  {:>16}",
                best.rps, best.frontend_threads
            );
            best
        };
        for clients in [10usize, 64] {
            let e = best(FrontendKind::EventLoop, clients, 1);
            let t = best(FrontendKind::Threads, clients, 1);
            assert_eq!(
                e.frontend_threads, 1,
                "event loop must stay single-threaded at {clients} connections"
            );
            if clients == 64 {
                sink.record("serve_conc_rps_c64", e.rps);
            } else {
                sink.record("info_serve_conc_rps_c10_epoll", e.rps);
            }
            sink.record(&format!("info_serve_conc_rps_c{clients}_threads"), t.rps);
        }
        let (e256, t256) = {
            let mut e = run_rung(FrontendKind::EventLoop, 256, waves);
            let mut t = run_rung(FrontendKind::Threads, 256, waves);
            for _ in 1..3 {
                let er = run_rung(FrontendKind::EventLoop, 256, waves);
                if er.rps > e.rps {
                    e = er;
                }
                let tr = run_rung(FrontendKind::Threads, 256, waves);
                if tr.rps > t.rps {
                    t = tr;
                }
            }
            for (r, f) in [(&e, FrontendKind::EventLoop), (&t, FrontendKind::Threads)] {
                println!(
                    "{:>8}  {f:>10?}  {:>12.1}  {:>16}",
                    256, r.rps, r.frontend_threads
                );
            }
            (e, t)
        };
        assert_eq!(e256.frontend_threads, 1);
        sink.record("serve_conc_rps_c256", e256.rps);
        sink.record("info_serve_conc_rps_c256_threads", t256.rps);
        sink.record("floor_serve_epoll_vs_threads_c256", e256.rps / t256.rps);

        // Connection-scale rungs: event loop only. One front-end thread for
        // every rung is asserted, not assumed.
        let e1k = best(FrontendKind::EventLoop, 1024, 1);
        assert_eq!(e1k.frontend_threads, 1);
        sink.record("info_serve_conc_rps_c1024", e1k.rps);

        // The big rung needs ~2 fds per connection (client + server side) in
        // this one process.
        let want_fds = 2 * big_clients as u64 + 4_000;
        let got = raise_nofile_limit(want_fds).expect("raise_nofile_limit");
        let big_clients = if got < want_fds {
            let capped = ((got.saturating_sub(4_000)) / 2) as usize;
            println!(
            "serve_concurrency: fd limit {got} < {want_fds} — big rung capped to {capped} connections"
        );
            capped
        } else {
            big_clients
        };
        let ebig = {
            let r = run_rung(FrontendKind::EventLoop, big_clients, big_waves);
            println!(
                "{big_clients:>8}  {:>10?}  {:>12.1}  {:>16}",
                FrontendKind::EventLoop,
                r.rps,
                r.frontend_threads
            );
            r
        };
        assert_eq!(
            ebig.frontend_threads, 1,
            "event loop must stay single-threaded at {big_clients} connections"
        );
        sink.record("info_serve_conc_big_clients", big_clients as f64);
        sink.record("info_serve_conc_rps_big", ebig.rps);

        println!(
        "epoll/threads @256: {:.2}x  |  epoll @{big_clients}: {:.1} req/s on 1 front-end thread, zero leaks",
        e256.rps / t256.rps,
        ebig.rps
    );
        sink.write_if_requested();
    }
}
