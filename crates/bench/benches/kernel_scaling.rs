//! Thread-pool kernel scaling: GFLOP/s and speedup vs. thread count for the
//! hot kernels the parallel compute backend rewrote — dense matmul, Conv1d
//! forward (unfold + matmul), and a full PCNN+ATT train step (forward,
//! backward, SGD-ready gradients).
//!
//! Each kernel runs under explicit 1-, 2- and 4-thread pools (via
//! `imre_tensor::pool::with_pool`, independent of the global pool), so the
//! scaling curve is measurable on any machine. The t=2 speedups ride along
//! as `info_` metrics, but the conv256 and pcnn_step t=4 speedups gate as
//! `floor_` keys: they must stay at or above `max(baseline, 1.0)` within
//! tolerance, so an
//! inverted scaling curve (more threads, *less* throughput — the dispatch
//! overhead bug class) fails `scripts/bench_check.sh` instead of hiding in
//! an informational metric. The determinism contract means the *results*
//! are bit-identical at every point on the curve — only the wall clock
//! moves.
//!
//! The matmul bench additionally measures a forced-scalar (`with_backend`)
//! single-thread reference and gates the SIMD-over-scalar ratio
//! (`floor_matmul256_simd_vs_scalar`), and asserts via the dispatch
//! counters that the vector path was really taken on capable hardware.
//!
//! This bench also pins the single-thread fallback contract (no channel
//! round-trip when the pool has one thread or the op fits one grain): it
//! measures the per-call overhead of `ThreadPool::run` on a 1-thread pool
//! and asserts, via the pool's dispatch counter, that the whole 1-thread
//! suite and the micro-bench itself never dispatched a job.
//!
//! With `IMRE_BENCH_JSON=<path>` the measurements are written as flat JSON
//! for `scripts/bench_check.sh`. Honors `CRITERION_SAMPLE_MS` for a quick
//! CI smoke run.

use imre_bench::MetricSink;
use imre_core::{BagContext, HyperParams, ModelSpec, ReModel};
use imre_corpus::Dataset;
use imre_eval::smoke_config;
use imre_nn::{Conv1d, ParamStore, Tape};
use imre_tensor::pool::{with_pool, ThreadPool};
use imre_tensor::simd::{self, Backend};
use imre_tensor::{Tensor, TensorRng};
use std::time::{Duration, Instant};

const THREADS: [usize; 3] = [1, 2, 4];
const MATMUL_N: usize = 256;
const CONV_T: usize = 256;
const CONV_IN: usize = 64;
const CONV_FILTERS: usize = 128;
const CONV_WINDOW: usize = 3;

/// Per-sample time budget (`CRITERION_SAMPLE_MS`, default 50ms).
fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    Duration::from_millis(ms)
}

/// Best mean per-iteration time over `samples` samples; each sample repeats
/// `f` until the per-sample budget elapses. Min-of-means is robust to
/// scheduler noise without needing criterion's full statistics.
fn time_best(samples: usize, mut f: impl FnMut()) -> Duration {
    let budget = sample_budget();
    f(); // warm-up: page in buffers, spin up pool workers
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        let mut iters = 0u32;
        loop {
            f();
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        best = best.min(start.elapsed() / iters);
    }
    best
}

struct PcnnFixture {
    model: ReModel,
    bag: imre_core::PreparedBag,
    types: Vec<Vec<usize>>,
}

fn pcnn_fixture() -> PcnnFixture {
    let ds = Dataset::generate(&smoke_config(1));
    let hp = HyperParams::scaled();
    let bags = imre_core::prepare_bags(&ds.train, &hp);
    let types = imre_core::entity_type_table(&ds.world);
    let model = ReModel::new(
        ModelSpec::pcnn_att(),
        &hp,
        ds.vocab.len(),
        ds.num_relations(),
        imre_corpus::NUM_COARSE_TYPES,
        hp.entity_dim,
        7,
    );
    let bag = bags
        .iter()
        .max_by_key(|b| b.sentences.len())
        .expect("smoke dataset has bags")
        .clone();
    PcnnFixture { model, bag, types }
}

/// Measures one kernel at every thread count, prints the scaling row, and
/// records `<key>_t{t}_<unit>` plus speedup metrics; returns the t=1 value.
/// `value_of` converts the best per-iter time into the reported metric
/// (GFLOP/s or iterations/sec — higher is better either way).
///
/// The t=1 throughput gates as the machine-independent regression signal.
/// With `floor_gated`, the t=4 speedup gates as a `floor_` lower bound
/// (`bench_check.sh` fails if it drops below `max(baseline, 1.0)` minus
/// tolerance) so the scaling curve can never silently invert again; the
/// t=2 point and the raw multi-thread throughputs stay `info_` because
/// they track the core count of the box.
fn scale_kernel(
    sink: &mut MetricSink,
    key: &str,
    unit: &str,
    floor_gated: bool,
    value_of: impl Fn(Duration) -> f64,
    mut run: impl FnMut(),
) -> f64 {
    let mut base = 0.0f64;
    for &t in &THREADS {
        let pool = ThreadPool::new(t);
        let best = with_pool(&pool, || time_best(5, &mut run));
        let value = value_of(best);
        if t == 1 {
            sink.record(&format!("{key}_t{t}_{unit}"), value);
            base = value;
            println!("{key:<14} t={t}  {value:>10.3} {unit}");
            assert_eq!(
                pool.dispatched_jobs(),
                0,
                "{key}: a 1-thread pool must never dispatch through channels"
            );
        } else {
            let speedup = value / base;
            sink.record(&format!("info_{key}_t{t}_{unit}"), value);
            let speedup_key = if t == 4 && floor_gated {
                format!("floor_{key}_speedup_t{t}")
            } else {
                format!("info_{key}_speedup_t{t}")
            };
            sink.record(&speedup_key, speedup);
            println!("{key:<14} t={t}  {value:>10.3} {unit}  ({speedup:.2}x vs t=1)");
        }
    }
    base
}

fn bench_matmul(sink: &mut MetricSink) {
    let mut rng = TensorRng::seed(1);
    let a = Tensor::rand_uniform(&[MATMUL_N, MATMUL_N], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform(&[MATMUL_N, MATMUL_N], -1.0, 1.0, &mut rng);
    let flops = 2.0 * (MATMUL_N as f64).powi(3);
    let vectors_before = simd::vector_kernels();
    // matmul256 splits into a couple of 8 Mi-MAC chunks, so its t=4 point
    // pays real scheduler cost on small boxes — it stays info_; the gated
    // floors are the kernels the ISSUE names (conv256, pcnn_step).
    let simd_t1 = scale_kernel(
        sink,
        "matmul256",
        "gflops",
        false,
        |best| flops / best.as_secs_f64() / 1e9,
        || {
            std::hint::black_box(a.matmul(&b));
        },
    );
    let be = simd::backend();
    if be != Backend::Scalar {
        assert!(
            simd::vector_kernels() > vectors_before,
            "matmul256 on a {} backend must dispatch vector kernels",
            be.name()
        );
    }

    // Forced-scalar single-thread reference: the same matmul with the
    // fallback kernels pinned via the scoped override. The SIMD-over-scalar
    // ratio gates as a floor_ key so a dispatch regression (vector path
    // silently lost) fails bench_check on capable hardware.
    let p1 = ThreadPool::new(1);
    let scalar_best = with_pool(&p1, || {
        simd::with_backend(Backend::Scalar, || {
            time_best(5, || {
                std::hint::black_box(a.matmul(&b));
            })
        })
    });
    let scalar_t1 = flops / scalar_best.as_secs_f64() / 1e9;
    let ratio = simd_t1 / scalar_t1;
    sink.record("info_matmul256_scalar_t1_gflops", scalar_t1);
    sink.record("floor_matmul256_simd_vs_scalar", ratio);
    println!(
        "matmul256 backend={}: scalar t=1 {scalar_t1:>10.3} gflops, simd/scalar {ratio:.2}x",
        be.name()
    );
}

fn bench_conv(sink: &mut MetricSink) {
    let mut rng = TensorRng::seed(2);
    let mut store = ParamStore::new();
    let conv = Conv1d::new(
        &mut store,
        "conv",
        CONV_IN,
        CONV_FILTERS,
        CONV_WINDOW,
        &mut rng,
    );
    let x_data = Tensor::rand_uniform(&[CONV_T, CONV_IN], -1.0, 1.0, &mut rng);
    // unfold is a copy; the matmul does 2·t·(window·d)·filters flops.
    let flops = 2.0 * (CONV_T * CONV_WINDOW * CONV_IN * CONV_FILTERS) as f64;
    scale_kernel(
        sink,
        "conv256",
        "gflops",
        true,
        |best| flops / best.as_secs_f64() / 1e9,
        || {
            let mut tape = Tape::inference(&store);
            let x = tape.leaf(x_data.clone());
            std::hint::black_box(conv.forward(&mut tape, x));
        },
    );
}

fn bench_pcnn_step(sink: &mut MetricSink) {
    let mut fx = pcnn_fixture();
    let ctx = BagContext {
        entity_embedding: None,
        entity_types: &fx.types,
    };
    let bag = fx.bag.clone();
    let mut rng = TensorRng::seed(3);
    let model = &mut fx.model;
    scale_kernel(
        sink,
        "pcnn_step",
        "per_s",
        true,
        |best| 1.0 / best.as_secs_f64(),
        || {
            std::hint::black_box(model.bag_loss_and_backward(&bag, &ctx, 1.0, &mut rng));
            model.grads.zero();
        },
    );
}

/// Steady-state allocation telemetry for PCNN inference: run the forward
/// pass from a reused arena and report the per-pass pool-miss rate (gated
/// lower-is-better at a committed baseline of 0) plus pool-pressure info
/// metrics. A 1-thread pool keeps the warm-up boundary exact — with racy
/// multi-thread task claiming a cold thread-local stash could legitimately
/// miss after warm-up.
fn bench_pcnn_infer_allocs(sink: &mut MetricSink) {
    let fx = pcnn_fixture();
    let ctx = BagContext {
        entity_embedding: None,
        entity_types: &fx.types,
    };
    let bags = [&fx.bag];
    let pool1 = ThreadPool::new(1);
    with_pool(&pool1, || {
        let mut arena = imre_tensor::BufferPool::new();
        for _ in 0..3 {
            std::hint::black_box(fx.model.predict_batch_pooled(&bags, &ctx, &mut arena));
        }
        const PASSES: usize = 100;
        let before = arena.stats();
        for _ in 0..PASSES {
            std::hint::black_box(fx.model.predict_batch_pooled(&bags, &ctx, &mut arena));
        }
        let d = arena.stats().since(&before);
        let allocs = d.misses as f64 / PASSES as f64;
        sink.record("pcnn_infer_allocs_steady", allocs);
        sink.record(
            "info_pcnn_infer_pool_hits_per_pass",
            d.hits as f64 / PASSES as f64,
        );
        sink.record(
            "info_pcnn_infer_bytes_recycled_per_pass",
            d.bytes_recycled as f64 / PASSES as f64,
        );
        println!(
            "pcnn_infer alloc telemetry: {allocs:.3} allocs/pass, \
             {:.1} pool hits/pass, {:.0} bytes recycled/pass over {PASSES} warm passes",
            d.hits as f64 / PASSES as f64,
            d.bytes_recycled as f64 / PASSES as f64,
        );
    });
}

/// Satellite micro-bench: `ThreadPool::run` on a 1-thread pool must be a
/// plain inline loop — measure its per-call overhead and prove via the
/// dispatch counter that no job ever crossed a channel. A 4-thread pool
/// running a sub-grain kernel must take the same inline path.
fn bench_dispatch_fast_path(sink: &mut MetricSink) {
    let p1 = ThreadPool::new(1);
    let counter = std::sync::atomic::AtomicUsize::new(0);
    let best = time_best(5, || {
        p1.run(64, &|i| {
            counter.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
        });
    });
    assert_eq!(
        p1.dispatched_jobs(),
        0,
        "1-thread ThreadPool::run must not round-trip through channels"
    );
    let ns = best.as_secs_f64() * 1e9;
    sink.record("dispatch_inline_ns", ns);
    println!("dispatch fast path: {ns:.0} ns per 64-task run call (0 jobs dispatched)");

    let p4 = ThreadPool::new(4);
    let mut rng = TensorRng::seed(4);
    let a = Tensor::rand_uniform(&[8, 8], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform(&[8, 8], -1.0, 1.0, &mut rng);
    with_pool(&p4, || {
        std::hint::black_box(a.matmul(&b));
    });
    assert_eq!(
        p4.dispatched_jobs(),
        0,
        "sub-grain matmul must stay inline even on a 4-thread pool"
    );
    println!("sub-grain 8x8 matmul on 4-thread pool: 0 jobs dispatched");
}

fn main() {
    imre_bench::header(
        "kernel_scaling: thread-pool GFLOP/s and speedup vs. threads",
        "parallel compute backend",
    );
    let mut sink = MetricSink::new();
    bench_matmul(&mut sink);
    bench_conv(&mut sink);
    bench_pcnn_step(&mut sink);
    bench_pcnn_infer_allocs(&mut sink);
    bench_dispatch_fast_path(&mut sink);
    sink.write_if_requested();
    println!("\nkernel_scaling: all fast-path assertions held");
}
