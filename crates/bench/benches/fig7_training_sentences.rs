//! **Figure 7** — F1 of entity pairs with few available sentences,
//! PA-TMR vs PCNN+ATT, bucketed by sentence count (1, 2, 3, 4, 5+).
//!
//! The paper's finding: both models improve with more sentences, and
//! PA-TMR's advantage is largest for the sentence-starved pairs — the
//! implicit mutual relations compensate for missing textual evidence.
//! (Bucketing uses the test bag's own sentence count; see DESIGN.md for
//! the train/test-disjointness note.)

use imre_bench::{build_pipeline, dataset_configs, header, seeds};
use imre_core::ModelSpec;
use imre_eval::{f1_by_sentence_count, format_table};

fn main() {
    header(
        "Figure 7: F1 by number of sentences per entity pair",
        "paper Fig. 7",
    );
    let seed = seeds()[0];

    for config in dataset_configs() {
        let p = build_pipeline(&config);
        let base = p.train_system(ModelSpec::pcnn_att(), seed);
        let full = p.train_system(ModelSpec::pa_tmr(), seed);
        let ctx = p.ctx();
        let base_f1 = f1_by_sentence_count(&p.test_bags, |b| base.predict(b, &ctx));
        let full_f1 = f1_by_sentence_count(&p.test_bags, |b| full.predict(b, &ctx));
        let rows: Vec<Vec<String>> = base_f1
            .iter()
            .zip(&full_f1)
            .map(|((label, b), (_, f))| {
                vec![
                    label.clone(),
                    format!("{b:.4}"),
                    format!("{f:.4}"),
                    format!("{:+.4}", f - b),
                ]
            })
            .collect();
        println!(
            "\n{}",
            format_table(
                &format!("Figure 7 — {} (#sentences → F1)", config.name),
                &["#sentences", "PCNN+ATT", "PA-TMR", "Δ"],
                &rows,
            )
        );
    }
    println!(
        "(paper: PA-TMR outperforms PCNN+ATT most for pairs with inadequate training sentences)"
    );
}
