//! Serving throughput and query latency of the kNN interpolation path.
//!
//! The benchmark trains one smoke-scale PA-TMR model, builds its HNSW index
//! over the training-bag representations, freezes both into a version-2
//! [`imre_serve::Bundle`], and pushes saturation bursts through the engine
//! at K ∈ {0, 4, 16} neighbors. K=0 is the pure pre-kNN path (its req/s is
//! the no-regression anchor: shipping an index in the bundle must not slow
//! down requests that don't use it); K>0 adds one representation readout,
//! one HNSW search, and one blend per request.
//!
//! Gated metrics (`scripts/bench_check.sh`):
//!   - `knn_rps_k{0,4,16}` — saturation req/s per neighbor count;
//!   - `knn_query_ns` — mean index query time (search + vote + blend),
//!     from the engine's own `knn_query_ns` counter;
//!   - `knn_serve_allocs_per_request_steady` — fresh buffer allocations per
//!     interpolated request after warm-up, committed at exactly 0.
//!
//! Informational: `info_knn_index_build_ms`, `info_knn_index_bytes`.
//!
//! Honors `CRITERION_SAMPLE_MS` for a quick CI smoke run.

use criterion::{criterion_group, BenchmarkId, Criterion};
use imre_core::{HyperParams, ModelSpec};
use imre_eval::{smoke_config, Pipeline};
use imre_graph::EntityEmbedding;
use imre_serve::{EngineConfig, InferRequest, Registry, ServeHandle, ServingModel};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Requests per saturation burst (matches `serve_throughput`).
const BURST: usize = 64;

struct Fixture {
    registry: Arc<Registry>,
    /// Pure requests; per-K variants clone these and set the knn fields.
    requests: Vec<InferRequest>,
    index_build_ms: f64,
    index_bytes: usize,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hp = HyperParams {
            epochs: 1,
            ..HyperParams::tiny()
        };
        let pipeline = Pipeline::build(&smoke_config(9), hp);
        let model = pipeline.train_system(ModelSpec::pa_tmr(), 13);
        let build_start = Instant::now();
        let ann = imre_eval::build_index(&pipeline, &model, 13);
        let index_build_ms = build_start.elapsed().as_secs_f64() * 1e3;
        let index_bytes = ann.serialized_len();
        let embedding = EntityEmbedding::from_matrix(pipeline.embedding.matrix().clone());
        let bundle = imre_serve::Bundle::new(
            model,
            pipeline.dataset.vocab.clone(),
            &pipeline.dataset.world,
            Some(embedding),
        )
        .with_ann(ann);
        let serving = ServingModel::new(bundle).expect("bundle validates");
        let names: Vec<String> = serving
            .bundle()
            .entities
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        let requests = (0..BURST)
            .map(|i| {
                let head = names[i % names.len()].clone();
                let tail = names[(i * 7 + 3) % names.len()].clone();
                let text = format!("records show {head} associated with {tail} in the region");
                InferRequest {
                    model: "smoke".to_string(),
                    head,
                    tail,
                    text,
                    top_k: 3,
                    deadline_ms: None,
                    ..InferRequest::default()
                }
            })
            .collect();
        let registry = Arc::new(Registry::new());
        registry.insert("smoke", serving);
        Fixture {
            registry,
            requests,
            index_build_ms,
            index_bytes,
        }
    })
}

fn engine() -> ServeHandle {
    ServeHandle::start(
        Arc::clone(&fixture().registry),
        EngineConfig {
            workers: 1,
            batch_max: 8,
            batch_deadline: Duration::from_millis(1),
            queue_capacity: 2 * BURST,
            default_deadline_ms: None,
            ..EngineConfig::default()
        },
    )
}

/// The fixture burst with `knn=k lambda=0.3` applied (K=0 leaves the
/// requests on the pure path — no knn fields at all).
fn requests_at(k: usize) -> Vec<InferRequest> {
    fixture()
        .requests
        .iter()
        .map(|r| {
            let mut r = r.clone();
            if k > 0 {
                r.knn_k = Some(k);
                r.knn_lambda = Some(0.3);
            }
            r
        })
        .collect()
}

/// Submits the whole burst up front, then waits for every reply.
fn burst(handle: &ServeHandle, requests: &[InferRequest]) -> usize {
    let pending: Vec<_> = requests
        .iter()
        .map(|r| handle.submit(r.clone()).expect("submit"))
        .collect();
    let n = pending.len();
    for p in pending {
        p.wait().expect("reply");
    }
    n
}

fn bench_neighbor_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_serve/k");
    for &k in &[0usize, 4, 16] {
        let handle = engine();
        let requests = requests_at(k);
        group.bench_with_input(BenchmarkId::new("burst64/k", k), &k, |b, _| {
            b.iter(|| std::hint::black_box(burst(&handle, &requests)));
        });
        handle.shutdown();
    }
    group.finish();
}

/// Non-criterion summary: req/s per K, the engine's mean kNN query time,
/// and the steady-state allocation budget of the interpolated path. With
/// `IMRE_BENCH_JSON` set, everything is written as flat JSON for the
/// `scripts/bench_check.sh` regression gate.
fn print_summary() {
    println!("\n=== knn_serve summary (burst = {BURST}, workers = 1, batch_max = 8) ===");
    let mut sink = imre_bench::MetricSink::new();
    sink.record("info_knn_index_build_ms", fixture().index_build_ms);
    sink.record("info_knn_index_bytes", fixture().index_bytes as f64);
    println!(
        "index: {} bytes, built in {:.1} ms",
        fixture().index_bytes,
        fixture().index_build_ms
    );
    let mut rps_k0 = 0.0f64;
    for &k in &[0usize, 4, 16] {
        let handle = engine();
        let requests = requests_at(k);
        burst(&handle, &requests); // warm up
        burst(&handle, &requests);
        // Warm-up boundary: from here the worker's arena and kNN scratch
        // are at steady-state capacity, so the miss counter must not move.
        let o = std::sync::atomic::Ordering::Relaxed;
        let before = {
            let m = handle.metrics();
            (
                m.pool_misses.load(o),
                m.knn_queries.load(o),
                m.knn_query_ns.load(o),
            )
        };
        let (samples, bursts_per_sample) = (5, 8);
        let mut best = Duration::MAX;
        let mut served = 0;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..bursts_per_sample {
                served += burst(&handle, &requests);
            }
            best = best.min(start.elapsed() / bursts_per_sample);
        }
        let rps = BURST as f64 / best.as_secs_f64();
        sink.record(&format!("knn_rps_k{k}"), rps);
        if k == 0 {
            rps_k0 = rps;
            println!("k={k:>2}  {rps:>9.1} req/s  (pure path)");
        } else {
            println!("k={k:>2}  {rps:>9.1} req/s  ({:.2}x vs k=0)", rps / rps_k0);
        }
        if k == 16 {
            let m = handle.metrics();
            let steady_misses = m.pool_misses.load(o) - before.0;
            let queries = m.knn_queries.load(o) - before.1;
            let query_ns = m.knn_query_ns.load(o) - before.2;
            assert_eq!(
                queries as usize, served,
                "every interpolated request queries the index exactly once"
            );
            let allocs_per_request = steady_misses as f64 / served as f64;
            sink.record("knn_serve_allocs_per_request_steady", allocs_per_request);
            sink.record("knn_query_ns", query_ns as f64 / queries as f64);
            println!(
                "steady-state kNN telemetry: {allocs_per_request:.4} allocs/req, \
                 {:.0} ns mean query over {served} requests",
                query_ns as f64 / queries as f64
            );
            println!("\n--- engine stats after the k=16 run ---");
            println!("{}", handle.stats_text());
        }
        handle.shutdown();
    }
    sink.write_if_requested();
}

criterion_group!(benches, bench_neighbor_count);

fn main() {
    // Pin the compute pool to one thread before any tensor op initialises
    // it lazily: the steady-state alloc gate needs an exact warm-up
    // boundary (see serve_throughput.rs for the full rationale).
    std::env::set_var("IMRE_THREADS", "1");
    benches();
    print_summary();
}
