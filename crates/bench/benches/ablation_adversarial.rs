//! **Extension (paper §II-B)** — adversarial training as an alternative
//! noise-mitigation strategy: PCNN+ATT trained normally vs. with FGM
//! word-embedding perturbations (Wu et al. 2017), and PA-TMR on top of the
//! adversarially-trained base.

use imre_bench::{build_pipeline, dataset_configs, header, seeds};
use imre_core::{train_adversarial, AdvConfig, ModelSpec, ReModel, TrainConfig};
use imre_eval::{format_table, metric};

fn main() {
    header(
        "Extension: FGM adversarial training vs standard training",
        "paper §II-B noise mitigation",
    );
    let seed = seeds()[0];
    let config = &dataset_configs()[0];
    let p = build_pipeline(config);

    let mut rows = Vec::new();
    // standard PCNN+ATT
    let base = p.train_system(ModelSpec::pcnn_att(), seed);
    let ev = p.evaluate_model(&base);
    rows.push(vec!["PCNN+ATT".to_string(), metric(ev.auc), metric(ev.f1)]);

    // adversarially trained PCNN+ATT
    for (label, eps) in [
        ("PCNN+ATT+ADV ε=0.02", 0.02f32),
        ("PCNN+ATT+ADV ε=0.05", 0.05),
    ] {
        let mut model = ReModel::new(
            ModelSpec::pcnn_att(),
            &p.hp,
            p.dataset.vocab.len(),
            p.dataset.num_relations(),
            imre_corpus::NUM_COARSE_TYPES,
            p.embedding.dim(),
            seed,
        );
        model.set_word_embeddings(p.word_vectors.clone());
        let tc = TrainConfig::from_hp(&p.hp, seed ^ 0xabcd);
        train_adversarial(
            &mut model,
            &p.train_bags,
            &p.ctx(),
            &tc,
            &AdvConfig {
                epsilon: eps,
                adv_weight: 1.0,
            },
        );
        let ev = p.evaluate_model(&model);
        rows.push(vec![label.to_string(), metric(ev.auc), metric(ev.f1)]);
    }

    println!(
        "\n{}",
        format_table(
            &format!("Adversarial-training ablation — {}", config.name),
            &["training", "AUC", "F1"],
            &rows,
        )
    );
    println!("(FGM perturbs the word-embedding rows of each bag by ε·g/‖g‖; the model trains on clean + perturbed losses)");
}
