//! Criterion micro-benchmarks for the hot substrate operations: matmul,
//! PCNN forward+backward, selective attention, LINE epochs, proximity-graph
//! construction, and skip-gram pretraining.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imre_core::{featurize, HyperParams, ModelSpec, ReModel};
use imre_corpus::{generate_unlabeled, Dataset, UnlabeledConfig};
use imre_eval::smoke_config;
use imre_graph::{train_line, LineConfig, ProximityGraph};
use imre_nn::{GradStore, ParamStore, Tape};
use imre_tensor::{Tensor, TensorRng};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = TensorRng::seed(1);
        let a = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[n, n], -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_pcnn_step(c: &mut Criterion) {
    let ds = Dataset::generate(&smoke_config(1));
    let hp = HyperParams::scaled();
    let bags = imre_core::prepare_bags(&ds.train, &hp);
    let types = imre_core::entity_type_table(&ds.world);
    let ctx = imre_core::BagContext {
        entity_embedding: None,
        entity_types: &types,
    };
    let mut model = ReModel::new(
        ModelSpec::pcnn_att(),
        &hp,
        ds.vocab.len(),
        ds.num_relations(),
        imre_corpus::NUM_COARSE_TYPES,
        hp.entity_dim,
        7,
    );
    let bag = bags
        .iter()
        .max_by_key(|b| b.sentences.len())
        .expect("bags")
        .clone();
    let mut rng = TensorRng::seed(3);
    c.bench_function("pcnn_att_bag_forward_backward", |b| {
        b.iter(|| {
            std::hint::black_box(model.bag_loss_and_backward(&bag, &ctx, 1.0, &mut rng));
            model.grads.zero();
        });
    });
    c.bench_function("pcnn_att_bag_predict", |b| {
        b.iter(|| std::hint::black_box(model.predict(&bag, &ctx)));
    });
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = TensorRng::seed(5);
    let mut store = ParamStore::new();
    let att = imre_core::SelectiveAttention::new(&mut store, "att", 192, 53, &mut rng);
    let xs_data = Tensor::rand_uniform(&[12, 192], -1.0, 1.0, &mut rng);
    c.bench_function("selective_attention_12x192", |b| {
        b.iter(|| {
            let mut tape = Tape::new(&store);
            let xs = tape.leaf(xs_data.clone());
            std::hint::black_box(att.aggregate(&mut tape, xs, 7));
        });
    });
    let _ = GradStore::zeros_like(&store);
}

fn bench_graph_and_line(c: &mut Criterion) {
    let ds = Dataset::generate(&smoke_config(2));
    let co = generate_unlabeled(&ds.world, &UnlabeledConfig::default());
    c.bench_function("proximity_graph_build", |b| {
        b.iter(|| {
            std::hint::black_box(ProximityGraph::from_counts(
                co.iter().map(|(&p, &cnt)| (p, cnt)),
                ds.world.num_entities(),
                2,
            ))
        });
    });
    let graph = ProximityGraph::from_counts(
        co.iter().map(|(&p, &cnt)| (p, cnt)),
        ds.world.num_entities(),
        2,
    );
    c.bench_function("line_10k_samples", |b| {
        b.iter(|| {
            std::hint::black_box(train_line(
                &graph,
                &LineConfig {
                    dim: 32,
                    samples_per_epoch: 10_000,
                    epochs: 1,
                    ..Default::default()
                },
            ))
        });
    });
}

fn bench_featurize(c: &mut Criterion) {
    let ds = Dataset::generate(&smoke_config(3));
    let sentences: Vec<_> = ds
        .train
        .iter()
        .flat_map(|b| b.sentences.iter().cloned())
        .collect();
    c.bench_function("featurize_corpus", |b| {
        b.iter(|| {
            for s in &sentences {
                std::hint::black_box(featurize(s, 30, 30));
            }
        });
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_pcnn_step,
    bench_attention,
    bench_graph_and_line,
    bench_featurize
);
criterion_main!(benches);
