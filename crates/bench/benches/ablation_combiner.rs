//! **Ablation (beyond the paper's tables)** — inspects the learned α/β/γ
//! combiner weights and compares the PA variants, quantifying how much of
//! PA-TMR's gain each component carries. DESIGN.md lists this as the
//! design-choice ablation for the combination layer of §III-D.

use imre_bench::{build_pipeline, dataset_configs, header, seeds};
use imre_core::ModelSpec;
use imre_eval::{format_table, metric};

fn main() {
    header(
        "Ablation: combiner mixing weights and per-component gains",
        "paper §III-D design choice",
    );
    let seed = seeds()[0];

    for config in dataset_configs() {
        let p = build_pipeline(&config);
        let mut rows = Vec::new();
        for spec in [
            ModelSpec::pcnn_att(),
            ModelSpec::pa_t(),
            ModelSpec::pa_mr(),
            ModelSpec::pa_tmr(),
        ] {
            let model = p.train_system(spec, seed);
            let ev = p.evaluate_model(&model);
            // Combiner weights exist only for PA variants.
            let (alpha, beta, gamma) = match model.store.find("comb.alpha") {
                Some(a) => {
                    let b = model.store.find("comb.beta").expect("beta");
                    let g = model.store.find("comb.gamma").expect("gamma");
                    (
                        model.store.get(a).data()[0],
                        model.store.get(b).data()[0],
                        model.store.get(g).data()[0],
                    )
                }
                None => (f32::NAN, f32::NAN, f32::NAN),
            };
            rows.push(vec![
                spec.name(),
                metric(ev.auc),
                metric(ev.f1),
                format!("{alpha:.3}"),
                format!("{beta:.3}"),
                format!("{gamma:.3}"),
            ]);
        }
        println!(
            "\n{}",
            format_table(
                &format!("Combiner ablation — {}", config.name),
                &["model", "AUC", "F1", "α (MR)", "β (T)", "γ (RE)"],
                &rows,
            )
        );
    }
    println!(
        "(α, β, γ are the learned mixing weights of P(r) = softmax(w(αC_MR + βC_T + γRE) + b))"
    );
}
