//! **Table V / Figure 8** — the case study: nearest entities of *Seattle*
//! and *University of Washington* in the learned entity-embedding space,
//! plus a 3-D PCA projection (the paper uses the TensorFlow Embedding
//! Projector; we print coordinates).

use imre_bench::{build_pipeline, dataset_configs, header};
use imre_graph::{nearest, pca_project};

fn main() {
    header(
        "Table V + Figure 8: entity-embedding case study",
        "paper Table V / Fig. 8",
    );
    let p = build_pipeline(&dataset_configs()[0]);
    let ds = &p.dataset;

    for name in ["University_of_Washington", "Seattle"] {
        match ds.world.entity_by_name(name) {
            None => println!("\n(entity {name} not present at this scale — run without IMRE_FAST)"),
            Some(id) => {
                println!("\nTop 10 nearest entities of {name}:");
                for (rank, (v, cos)) in nearest(&p.embedding, id.0, 10).into_iter().enumerate() {
                    println!(
                        "{:>3}. {:<40} cos {:+.3}",
                        rank + 1,
                        ds.world.entities[v].name,
                        cos
                    );
                }
            }
        }
    }

    // Figure 8: project the two case-study clusters into 3-D
    println!("\nFigure 8 — 3-D PCA coordinates of the case-study neighbourhood:");
    if let Some(uw) = ds.world.entity_by_name("University_of_Washington") {
        let mut ids: Vec<usize> = vec![uw.0];
        ids.extend(nearest(&p.embedding, uw.0, 8).into_iter().map(|(v, _)| v));
        if let Some(sea) = ds.world.entity_by_name("Seattle") {
            ids.push(sea.0);
            ids.extend(nearest(&p.embedding, sea.0, 8).into_iter().map(|(v, _)| v));
        }
        ids.sort_unstable();
        ids.dedup();
        let rows: Vec<Vec<f32>> = ids
            .iter()
            .map(|&v| p.embedding.vector(v).to_vec())
            .collect();
        let mat = imre_tensor::Tensor::from_rows(&rows);
        let proj = pca_project(&mat, 3, 7);
        for (k, &v) in ids.iter().enumerate() {
            println!(
                "{:<40} ({:+.3}, {:+.3}, {:+.3})",
                ds.world.entities[v].name,
                proj.at(k, 0),
                proj.at(k, 1),
                proj.at(k, 2)
            );
        }
    }
    println!("\n(paper's finding: universities cluster together, cities cluster together)");
}
