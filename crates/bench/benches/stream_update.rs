//! Streaming-ingest benchmark: delta-batch throughput of the incremental
//! proximity graph, the per-batch latency of warm-start LINE refinement,
//! and the end-to-end publish-to-visible latency of the hot-swap path.
//!
//! Gated metrics (`scripts/bench_check.sh`):
//!   - `stream_deltas_per_s` — delta batches folded into the incremental
//!     graph per second (dedup → catalog → sharded pair counting → graph
//!     delta), higher is better;
//!   - `stream_refine_update_ns` — mean per-batch cost of refine-mode
//!     ingest once the LINE tables are warm (touched-edge alias rebuild +
//!     bounded SGD), lower is better.
//!
//! Informational: `info_stream_publish_visible_ns` — one full publish:
//! canonical embedding refresh, base-bundle reload from disk, table swap,
//! revalidation, and `Registry::insert` (dominated by the LINE retrain).
//!
//! Honors `CRITERION_SAMPLE_MS` for a quick CI smoke run.

use criterion::{criterion_group, Criterion};
use imre_core::{HyperParams, ModelSpec};
use imre_corpus::stream::{DeltaBatch, LineDeltaSource, StreamSource};
use imre_corpus::synth_delta_text;
use imre_eval::{smoke_config, Pipeline};
use imre_graph::{EntityEmbedding, LineConfig, RefineConfig};
use imre_serve::{load_bundle, save_bundle, Bundle, Registry, ServingModel};
use imre_stream::{RefreshMode, StreamBuild, StreamBuildConfig};
use std::io::Cursor;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const BATCHES: usize = 24;
const EVENTS_PER_BATCH: usize = 32;

struct Fixture {
    bundle_path: std::path::PathBuf,
    base_entities: Vec<(String, Vec<usize>)>,
    num_types: usize,
    embedding_dim: usize,
    batches: Vec<DeltaBatch>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hp = HyperParams {
            epochs: 1,
            ..HyperParams::tiny()
        };
        let pipeline = Pipeline::build(&smoke_config(5), hp);
        let model = pipeline.train_system(ModelSpec::pa_tmr(), 11);
        let num_types = model.num_types();
        let embedding = EntityEmbedding::from_matrix(pipeline.embedding.matrix().clone());
        let embedding_dim = embedding.dim();
        let bundle = Bundle::new(
            model,
            pipeline.dataset.vocab.clone(),
            &pipeline.dataset.world,
            Some(embedding),
        );
        let base_entities = bundle.entities.clone();
        let dir = std::env::temp_dir().join(format!("imre_stream_bench_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("bench temp dir");
        let bundle_path = dir.join("base.imrb");
        save_bundle(&bundle, &bundle_path).expect("save base bundle");

        // Deltas over the base entity names plus a block of cold-start
        // names, so ingest exercises admission as well as count updates.
        let mut names: Vec<String> = base_entities.iter().map(|(n, _)| n.clone()).collect();
        names.extend((0..16).map(|i| format!("fresh{i}")));
        let text = synth_delta_text(&names, BATCHES, EVENTS_PER_BATCH, 41);
        let mut src = LineDeltaSource::new(Cursor::new(text.into_bytes()));
        let mut batches = Vec::new();
        while let Some(b) = src.next_batch().expect("synthetic deltas parse") {
            batches.push(b);
        }
        Fixture {
            bundle_path,
            base_entities,
            num_types,
            embedding_dim,
            batches,
        }
    })
}

fn build_config(refresh: RefreshMode, dim: usize) -> StreamBuildConfig {
    StreamBuildConfig {
        threshold: 2,
        line: LineConfig {
            dim,
            samples_per_epoch: 20_000,
            epochs: 1,
            ..Default::default()
        },
        threads: 2,
        refresh,
    }
}

/// One full graph-only ingest pass over every delta batch.
fn ingest_all(refresh: RefreshMode) -> StreamBuild {
    let fx = fixture();
    let mut build = StreamBuild::new(
        &fx.base_entities,
        fx.num_types,
        build_config(refresh, fx.embedding_dim),
    );
    for batch in &fx.batches {
        build.apply_batch(batch.clone()).expect("batch applies");
    }
    build
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_update");
    group.bench_function(
        criterion::BenchmarkId::from_parameter("ingest_24_batches"),
        |b| {
            b.iter(|| std::hint::black_box(ingest_all(RefreshMode::Canonical).graph().n_edges()));
        },
    );
    group.finish();
}

/// Best-of mean duration of `runs` timed executions of `f`.
fn best_of(samples: usize, runs: u32, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..runs {
            f();
        }
        best = best.min(start.elapsed() / runs);
    }
    best
}

fn print_summary() {
    let fx = fixture();
    println!(
        "\n=== stream_update summary ({BATCHES} batches x {EVENTS_PER_BATCH} events, threads = 2) ==="
    );
    let mut sink = imre_bench::MetricSink::new();

    // Graph-only ingest throughput (what the updater does on every batch).
    ingest_all(RefreshMode::Canonical); // warm up
    let per_pass = best_of(5, 3, || {
        std::hint::black_box(ingest_all(RefreshMode::Canonical).graph().n_edges());
    });
    let deltas_per_s = BATCHES as f64 / per_pass.as_secs_f64();
    sink.record("stream_deltas_per_s", deltas_per_s);
    println!("ingest     {deltas_per_s:>9.1} delta batches/s");

    // Warm refine-mode ingest: tables are initialised by the first batch
    // with edges; the steady-state per-batch cost is what serving pays.
    let rc = RefineConfig {
        samples: 2_000,
        lr: 0.005,
        negatives: 5,
    };
    let refine_ns = {
        let mut build = StreamBuild::new(
            &fx.base_entities,
            fx.num_types,
            build_config(RefreshMode::Refine(rc), fx.embedding_dim),
        );
        let (head, tail) = fx.batches.split_at(fx.batches.len() / 2);
        for batch in head {
            build.apply_batch(batch.clone()).expect("warm-up batch");
        }
        let start = Instant::now();
        for batch in tail {
            build.apply_batch(batch.clone()).expect("timed batch");
        }
        start.elapsed().as_nanos() as f64 / tail.len() as f64
    };
    sink.record("stream_refine_update_ns", refine_ns);
    println!("refine     {:>9.3} ms/batch (warm tables)", refine_ns / 1e6);

    // End-to-end publish: canonical refresh + bundle reload + swap +
    // revalidate + registry insert — the latency from "deltas ingested" to
    // "new model answers requests".
    let publish_ns = {
        let mut build = ingest_all(RefreshMode::Canonical);
        let registry = Registry::new();
        registry
            .load_file("smoke", &fx.bundle_path)
            .expect("base load");
        let start = Instant::now();
        let embedding = build.embedding().expect("refresh");
        let mut bundle = load_bundle(&fx.bundle_path).expect("reload");
        bundle.entities = build.catalog().entries().to_vec();
        bundle.embedding = Some(embedding);
        let model = ServingModel::new(bundle).expect("validates");
        registry.insert("smoke", model);
        start.elapsed().as_nanos() as f64
    };
    sink.record("info_stream_publish_visible_ns", publish_ns);
    println!("publish    {:>9.3} ms to visible", publish_ns / 1e6);

    sink.write_if_requested();
    std::fs::remove_dir_all(fx.bundle_path.parent().expect("bench dir")).ok();
}

criterion_group!(benches, bench_ingest);

fn main() {
    // Pin the compute pool to one thread before any tensor op initialises
    // it lazily (see serve_throughput.rs for the rationale).
    std::env::set_var("IMRE_THREADS", "1");
    benches();
    print_summary();
}
