//! **Extension (paper §V future work)** — GNN-style propagation over the
//! proximity graph before computing mutual relations.
//!
//! The paper's conclusion notes that pure first/second-order LINE "may fail
//! for vertices that have few or even no edges" and proposes GNNs. This
//! bench quantifies the effect: MR-vector clustering quality and PA-MR
//! accuracy with raw LINE embeddings vs. GCN-smoothed ones, stratified by
//! vertex degree.

use imre_bench::{build_pipeline, dataset_configs, header, seeds};
use imre_core::ModelSpec;
use imre_eval::{evaluate_system, format_table, metric};
use imre_graph::{propagate, EntityEmbedding, PropagationConfig, ProximityGraph};

/// Mean intra-relation minus inter-relation MR cosine (higher = cleaner).
fn mr_separation(emb: &EntityEmbedding, world: &imre_corpus::World) -> f32 {
    let mut by_rel: Vec<Vec<(usize, usize)>> = vec![Vec::new(); world.num_relations()];
    for f in &world.facts {
        by_rel[f.relation.0].push((f.head.0, f.tail.0));
    }
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for r in 1..world.num_relations() {
        let ps = &by_rel[r];
        if ps.len() < 4 {
            continue;
        }
        for i in 0..3 {
            for j in (i + 1)..4 {
                intra.push(
                    emb.mutual_relation(ps[i].0, ps[i].1)
                        .cosine(&emb.mutual_relation(ps[j].0, ps[j].1)),
                );
            }
        }
        let other = (r % (world.num_relations() - 1)) + 1;
        if other != r && by_rel[other].len() >= 2 {
            for &(h1, t1) in ps.iter().take(2) {
                for &(h2, t2) in by_rel[other].iter().take(2) {
                    inter.push(
                        emb.mutual_relation(h1, t1)
                            .cosine(&emb.mutual_relation(h2, t2)),
                    );
                }
            }
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    mean(&intra) - mean(&inter)
}

fn main() {
    header(
        "Extension: GNN propagation over the proximity graph",
        "paper §V future work",
    );
    let seed = seeds()[0];
    let config = &dataset_configs()[0];
    let mut p = build_pipeline(config);
    let graph = ProximityGraph::from_counts(
        p.co.iter().map(|(&pair, &c)| (pair, c)),
        p.dataset.world.num_entities(),
        2,
    );

    let mut rows = Vec::new();
    let raw_sep = mr_separation(&p.embedding, &p.dataset.world);
    let raw_ev = {
        let model = p.train_system(ModelSpec::pa_mr(), seed);
        let ctx = p.ctx();
        evaluate_system(&p.test_bags, p.dataset.num_relations(), |b| {
            model.predict(b, &ctx)
        })
    };
    rows.push(vec![
        "LINE (paper)".to_string(),
        format!("{raw_sep:.4}"),
        metric(raw_ev.auc),
        metric(raw_ev.f1),
    ]);

    for (label, cfg) in [
        (
            "LINE + GCN λ=0.3 ×1",
            PropagationConfig {
                lambda: 0.3,
                hops: 1,
            },
        ),
        (
            "LINE + GCN λ=0.5 ×2",
            PropagationConfig {
                lambda: 0.5,
                hops: 2,
            },
        ),
    ] {
        let smoothed = propagate(&p.embedding, &graph, &cfg);
        let sep = mr_separation(&smoothed, &p.dataset.world);
        p.embedding = smoothed;
        let model = p.train_system(ModelSpec::pa_mr(), seed);
        let ctx = p.ctx();
        let ev = evaluate_system(&p.test_bags, p.dataset.num_relations(), |b| {
            model.predict(b, &ctx)
        });
        rows.push(vec![
            label.to_string(),
            format!("{sep:.4}"),
            metric(ev.auc),
            metric(ev.f1),
        ]);
    }

    println!(
        "\n{}",
        format_table(
            &format!("GNN-propagation ablation — {} (PA-MR)", config.name),
            &["embedding", "MR separation", "AUC", "F1"],
            &rows,
        )
    );
    println!("(MR separation = mean intra-relation − inter-relation cosine of MR vectors)");
}
