//! **Figure 4** — precision–recall curves on both datasets, including the
//! non-neural baselines (Mintz, MultiR, MIMLRE) the paper plots on NYT.
//!
//! Prints each curve as a downsampled `recall precision` series.

use imre_bench::{build_pipeline, dataset_configs, header, seeds};
use imre_core::baselines::{Mimlre, Mintz, MultiR};
use imre_core::ModelSpec;
use imre_eval::{evaluate_system, format_pr_series};

fn main() {
    header("Figure 4: precision-recall curves", "paper Fig. 4");
    let seed = seeds()[0];
    let specs = [
        ModelSpec::pcnn(),
        ModelSpec::pcnn_att(),
        ModelSpec::bgwa(),
        ModelSpec::pa_tmr(),
    ];

    for (di, config) in dataset_configs().iter().enumerate() {
        let p = build_pipeline(config);
        println!("\n## dataset: {}", config.name);

        // non-neural baselines on the first (NYT-like) dataset only, as in
        // the paper ("so we only report the results of neural baselines on
        // GDS dataset")
        if di == 0 {
            let m = p.dataset.num_relations();
            let mut mintz = Mintz::new(m, 16);
            mintz.train(&p.train_bags, &p.types, 5, 0.1, seed);
            let ev = evaluate_system(&p.test_bags, m, |b| mintz.predict(b, &p.types));
            println!("{}", format_pr_series("Mintz", &ev.curve, 60));

            let mut multir = MultiR::new(m, 16);
            multir.train(&p.train_bags, &p.types, 5, 0.5, seed);
            let ev = evaluate_system(&p.test_bags, m, |b| multir.predict(b, &p.types));
            println!("{}", format_pr_series("MultiR", &ev.curve, 60));

            let mut mimlre = Mimlre::new(m, 16);
            mimlre.train(&p.train_bags, &p.types, 3, 0.1, seed);
            let ev = evaluate_system(&p.test_bags, m, |b| mimlre.predict(b, &p.types));
            println!("{}", format_pr_series("MIMLRE", &ev.curve, 60));
        }

        for spec in specs {
            let ev = p.run_system(spec, seed);
            println!("{}", format_pr_series(&spec.name(), &ev.curve, 60));
            println!("# {} AUC {:.4}\n", spec.name(), ev.auc);
        }
    }
    println!("(paper: PA-TMR dominates all baselines, with the gap widening at higher recall)");
}
