//! **Table II** — dataset statistics: sentences and entity pairs per split,
//! number of relations, for both corpora.

use imre_bench::{dataset_configs, header};
use imre_corpus::stats::summarize;
use imre_corpus::Dataset;
use imre_eval::format_table;

fn main() {
    header("Table II: dataset descriptions", "paper Table II");
    let mut rows = Vec::new();
    for config in dataset_configs() {
        let ds = Dataset::generate(&config);
        let s = summarize(&ds);
        rows.push(vec![
            s.name.clone(),
            s.num_relations.to_string(),
            s.train_sentences.to_string(),
            s.train_pairs.to_string(),
            s.test_sentences.to_string(),
            s.test_pairs.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            "(paper: NYT 53 relations, 522,611/172,448 sentences; GDS 5 relations, 13,161/5,663 — scale reduced, shape preserved)",
            &["dataset", "#relations", "train sent.", "train pairs", "test sent.", "test pairs"],
            &rows,
        )
    );
}
