//! **Figure 5** — flexibility of the framework: GRU+ATT, CNN+ATT, PCNN and
//! PCNN+ATT each with and without the TMR components, AUC bars per dataset.
//!
//! The paper reports a 2–7 % improvement for every base model; the
//! reproduction target is `base + TMR > base` for all four bases.

use imre_bench::{build_pipeline, dataset_configs, header, seeds};
use imre_core::ModelSpec;
use imre_eval::{format_table, mean_evaluation, metric};

fn main() {
    header(
        "Figure 5: base models with and without TMR components",
        "paper Fig. 5",
    );
    let seed_list = seeds();
    let bases = [
        ModelSpec::gru_att(),
        ModelSpec::cnn_att(),
        ModelSpec::pcnn(),
        ModelSpec::pcnn_att(),
    ];

    for config in dataset_configs() {
        let p = build_pipeline(&config);
        let mut rows = Vec::new();
        let all_specs: Vec<imre_core::ModelSpec> =
            bases.iter().flat_map(|&b| [b, b.with_tmr()]).collect();
        let all_evals = p.run_systems_parallel(&all_specs, &seed_list);
        for (i, base) in bases.iter().enumerate() {
            let base = *base;
            let ev_base = mean_evaluation(&all_evals[2 * i]);
            let ev_tmr = mean_evaluation(&all_evals[2 * i + 1]);
            let delta = ev_tmr.auc - ev_base.auc;
            println!(
                "  [{}] {}: {:.4} → {:.4} ({:+.4})",
                config.name,
                base.name(),
                ev_base.auc,
                ev_tmr.auc,
                delta
            );
            rows.push(vec![
                base.name(),
                metric(ev_base.auc),
                metric(ev_tmr.auc),
                format!("{:+.4}", delta),
                format!("{:+.1}%", 100.0 * delta / ev_base.auc.max(1e-6)),
            ]);
        }
        println!(
            "\n{}",
            format_table(
                &format!(
                    "Figure 5 — {} (AUC, {} seed(s))",
                    config.name,
                    seed_list.len()
                ),
                &["base model", "base AUC", "+TMR AUC", "Δ", "Δ%"],
                &rows,
            )
        );
    }
    println!("(paper: every base model improves by 2-7% when the implicit mutual relations and entity types are integrated)");
}
