//! Data-parallel training scaling: bags/s and speedup vs. replica count for
//! the `imre-dist` engine (ISSUE 5), plus the determinism acceptance checks
//! run as embedded assertions:
//!
//! * two identical `(seed, replicas=4)` runs must produce **byte-identical**
//!   IMRM artifacts;
//! * the same configuration on a 1-thread and a 4-thread pool must too.
//!
//! The single-replica single-thread throughput gates regressions
//! (`train_bags_per_sec` in the bench JSON). The R=4 throughput and the
//! R=4-vs-R=1 replica speedup are `info_` metrics because they depend on
//! the core count of the box (the ≥2.5× criterion is asserted by
//! `scripts/ci.sh train-dp` only on runners with ≥4 cores). What gates is
//! `floor_train_dp_speedup_t4`: the *same* R=4 workload on a 4-thread vs a
//! 1-thread pool — identical computation and identical bits, so the ratio
//! isolates pure pool dispatch cost and must stay at `max(baseline, 1.0)`
//! within tolerance in `scripts/bench_check.sh`. A thread pool that
//! actively loses on training (the grain-sizing bug class) fails the gate
//! on any machine.
//!
//! With `IMRE_BENCH_JSON=<path>` the measurements are written as flat JSON
//! for `scripts/bench_check.sh`.

use imre_bench::MetricSink;
use imre_core::persist::write_model;
use imre_core::{
    entity_type_table, prepare_bags, BagContext, HyperParams, ModelSpec, PreparedBag, ReModel,
    TrainConfig,
};
use imre_corpus::Dataset;
use imre_dist::{DataParallel, DistStats, OptimizerKind};
use imre_eval::smoke_config;
use imre_tensor::pool::{with_pool, ThreadPool};

struct Fixture {
    bags: Vec<PreparedBag>,
    types: Vec<Vec<usize>>,
    hp: HyperParams,
    vocab: usize,
    relations: usize,
}

impl Fixture {
    fn new() -> Fixture {
        let ds = Dataset::generate(&smoke_config(1));
        let hp = HyperParams::tiny();
        let bags = prepare_bags(&ds.train, &hp);
        let types = entity_type_table(&ds.world);
        let vocab = ds.vocab.len();
        let relations = ds.num_relations();
        Fixture {
            bags,
            types,
            hp,
            vocab,
            relations,
        }
    }

    fn ctx(&self) -> BagContext<'_> {
        BagContext {
            entity_embedding: None,
            entity_types: &self.types,
        }
    }

    fn model(&self) -> ReModel {
        ReModel::new(
            ModelSpec::pcnn_att(),
            &self.hp,
            self.vocab,
            self.relations,
            38,
            8,
            7,
        )
    }

    fn tc(&self, epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 8,
            lr: 0.2,
            lr_decay: 0.95,
            clip_norm: 5.0,
            seed: 11,
        }
    }
}

/// One full training run; returns the engine telemetry and the serialized
/// IMRM bytes of the trained primary.
fn train_run(
    fx: &Fixture,
    replicas: usize,
    pool_threads: usize,
    epochs: usize,
) -> (DistStats, Vec<u8>) {
    let pool = ThreadPool::new(pool_threads);
    let tc = fx.tc(epochs);
    let (stats, model) = with_pool(&pool, || {
        let mut engine = DataParallel::new(fx.model(), replicas, OptimizerKind::Sgd, tc.lr);
        let stats = engine.train(&fx.bags, &fx.ctx(), &tc, 0, None);
        (stats, engine.into_model())
    });
    let mut bytes = Vec::new();
    write_model(&model, &mut bytes).unwrap();
    (stats, bytes)
}

fn main() {
    imre_bench::header(
        "train_scaling: data-parallel bags/s and determinism contract",
        "imre-dist engine (ISSUE 5)",
    );
    let fx = Fixture::new();
    let epochs = if imre_bench::fast_mode() { 2 } else { 4 };
    let mut sink = MetricSink::new();

    // Warm-up: page in buffers, settle the allocator.
    let _ = train_run(&fx, 1, 1, 1);

    // Gated baseline: serial replica on a serial pool — machine-independent
    // up to single-core speed, the regression signal for the training path.
    let (s_r1t1, bytes_r1a) = train_run(&fx, 1, 1, epochs);
    sink.record("train_bags_per_sec", s_r1t1.bags_per_sec);
    println!(
        "R=1 t=1  {:>8.1} bags/s, reduce share {:.2}%",
        s_r1t1.bags_per_sec,
        s_r1t1.reduce_share() * 100.0
    );

    // Embedded determinism assertions (the subsystem's acceptance criteria).
    let (s_r1t4, bytes_r1b) = train_run(&fx, 1, 4, epochs);
    assert_eq!(
        bytes_r1a, bytes_r1b,
        "R=1 artifact must be byte-identical across pool sizes"
    );
    let (s_r4t4, bytes_r4a) = train_run(&fx, 4, 4, epochs);
    let (s_r4t4b, bytes_r4b) = train_run(&fx, 4, 4, epochs);
    assert_eq!(
        bytes_r4a, bytes_r4b,
        "repeat R=4 runs must be byte-identical"
    );
    let (s_r4t1, bytes_r4t1) = train_run(&fx, 4, 1, epochs);
    assert_eq!(
        bytes_r4a, bytes_r4t1,
        "R=4 artifact must be byte-identical at 1 and 4 pool threads"
    );

    // Throughput sampling for the speedup ratios: the machine this gates on
    // can drift ~2× in absolute throughput between moments (shared vCPU),
    // so a single adjacent pair of runs would make the ratio a lottery.
    // Interleave the three configurations across rounds and take the best
    // run per configuration — min-of-times sampling where every
    // configuration gets a shot at each fast window.
    let mut r1t4 = s_r1t4.bags_per_sec;
    let mut r4t4 = s_r4t4.bags_per_sec.max(s_r4t4b.bags_per_sec);
    let mut r4t1 = s_r4t1.bags_per_sec;
    for _ in 0..3 {
        r1t4 = r1t4.max(train_run(&fx, 1, 4, epochs).0.bags_per_sec);
        r4t4 = r4t4.max(train_run(&fx, 4, 4, epochs).0.bags_per_sec);
        r4t1 = r4t1.max(train_run(&fx, 4, 1, epochs).0.bags_per_sec);
    }
    // Gated floor: thread scaling of the identical R=4 workload. Replica
    // scaling (R=4 vs R=1) stays info_ — it measures the box, not the code.
    let speedup_t4 = r4t4 / r4t1;
    let speedup_r4 = r4t4 / r1t4;
    sink.record("info_train_bags_per_sec_r4", r4t4);
    sink.record("floor_train_dp_speedup_t4", speedup_t4);
    sink.record("info_train_dp_speedup_r4", speedup_r4);
    sink.record("info_train_reduce_share_r4", s_r4t4.reduce_share());
    let traffic = (s_r4t4.pool.hits + s_r4t4.pool.misses).max(1);
    sink.record(
        "info_train_pool_hit_rate_r4",
        s_r4t4.pool.hits as f64 / traffic as f64,
    );
    println!(
        "R=1 t=4  {r1t4:>8.1} bags/s\nR=4 t=1  {r4t1:>8.1} bags/s\n\
         R=4 t=4  {r4t4:>8.1} bags/s  ({speedup_t4:.2}x vs t=1, {speedup_r4:.2}x vs R=1, \
         reduce share {:.2}%, arena hit rate {:.3})",
        s_r4t4.reduce_share() * 100.0,
        s_r4t4.pool.hits as f64 / traffic as f64,
    );

    sink.write_if_requested();
    println!("\ntrain_scaling: determinism assertions held");
}
