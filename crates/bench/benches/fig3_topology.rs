//! **Figure 3** — "the similar topological structure of *Houston* and
//! *Dallas*": semantically similar entities share neighbours in the entity
//! proximity graph.
//!
//! This bench builds the proximity graph from the unlabeled corpus and
//! reports common-neighbour counts and Jaccard similarity for same-cluster
//! vs. cross-cluster entity pairs (the quantitative content of Fig. 3).

use imre_bench::{dataset_configs, header};
use imre_corpus::{generate_unlabeled, Dataset, UnlabeledConfig};
use imre_graph::ProximityGraph;

fn main() {
    header(
        "Figure 3: topological similarity in the proximity graph",
        "paper Fig. 3",
    );
    let config = &dataset_configs()[0];
    let ds = Dataset::generate(config);
    let co = generate_unlabeled(&ds.world, &UnlabeledConfig::default());
    let graph =
        ProximityGraph::from_counts(co.iter().map(|(&p, &c)| (p, c)), ds.world.num_entities(), 2);
    println!(
        "graph: {} vertices, {} edges",
        graph.n_vertices(),
        graph.n_edges()
    );

    // the paper's concrete example pair, when the curated names exist
    if let (Some(a), Some(b)) = (
        ds.world.entity_by_name("Houston"),
        ds.world.entity_by_name("Dallas"),
    ) {
        let common = graph.common_neighbors(a.0, b.0);
        println!(
            "\nHouston vs Dallas: {} common neighbours, Jaccard {:.3}",
            common.len(),
            graph.neighborhood_jaccard(a.0, b.0)
        );
        let names: Vec<&str> = common
            .iter()
            .take(8)
            .map(|&v| ds.world.entities[v].name.as_str())
            .collect();
        println!("shared neighbours include: {names:?}");
    }

    // aggregate: same-cluster pairs vs random cross-cluster pairs
    let mut same = Vec::new();
    let mut cross = Vec::new();
    for cluster in ds.world.clusters.iter().take(20) {
        let m = &cluster.members;
        if m.len() >= 2 {
            same.push(graph.neighborhood_jaccard(m[0].0, m[1].0));
        }
    }
    for w in ds.world.clusters.windows(2).take(20) {
        if !w[0].members.is_empty() && !w[1].members.is_empty() {
            cross.push(graph.neighborhood_jaccard(w[0].members[0].0, w[1].members[0].0));
        }
    }
    let mean = |v: &[f32]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f32>() / v.len() as f32
        }
    };
    println!("\nmean neighbourhood Jaccard:");
    println!("  same-cluster pairs  : {:.3}", mean(&same));
    println!("  cross-cluster pairs : {:.3}", mean(&cross));
    println!("(paper's claim: semantically similar entities have similar topological structure)");
}
