//! **Table I** — examples of implicit mutual relations between entity
//! pairs: analogous pairs (here, `/education/university/located_in`
//! instances) share the relation even when one pair has almost no training
//! sentences.
//!
//! The bench finds the pairs of one relation, prints their per-pair
//! sentence counts (the paper's "Sentences" column), and shows that their
//! mutual-relation vectors `U_t − U_h` are mutually close — the property
//! PA-MR exploits.

use imre_bench::{build_pipeline, dataset_configs, header};
use imre_graph::nearest_pairs;

fn main() {
    header(
        "Table I: implicit mutual relations between entity pairs",
        "paper Table I",
    );
    let p = build_pipeline(&dataset_configs()[0]);
    let ds = &p.dataset;

    // The paper's Table I uses (university, city) pairs under located_in —
    // a relation whose head and tail clusters differ, so MR vectors carry
    // the cluster-offset signal. (Same-cluster relations like
    // /location/location/contains have near-zero MR vectors by design.)
    let rel = ds
        .world
        .relations
        .iter()
        .position(|r| r.name == "/education/university/located_in")
        .unwrap_or(1);
    let pairs: Vec<(usize, usize)> = ds
        .world
        .facts
        .iter()
        .filter(|f| f.relation.0 == rel)
        .map(|f| (f.head.0, f.tail.0))
        .collect();
    let schema = &ds.world.relations[rel];
    println!("\nrelation: {}", schema.name);

    // sentence counts per pair across splits
    let sentence_count = |h: usize, t: usize| -> usize {
        ds.train
            .iter()
            .chain(&ds.test)
            .filter(|b| b.head.0 == h && b.tail.0 == t)
            .map(|b| b.sentences.len())
            .sum()
    };

    println!("{:<4} {:<55} {:>9}", "ID", "entity pair", "sentences");
    for (i, &(h, t)) in pairs.iter().take(6).enumerate() {
        let label = format!(
            "({}, {})",
            ds.world.entities[h].name, ds.world.entities[t].name
        );
        println!("{:<4} {:<55} {:>9}", i + 1, label, sentence_count(h, t));
    }

    // mutual-relation similarity: the sparse pair's nearest analogues
    if let Some(&query) = pairs.first() {
        let neighbours = nearest_pairs(&p.embedding, query, &pairs, 4);
        println!(
            "\nnearest mutual relations to ({}, {}):",
            ds.world.entities[query.0].name, ds.world.entities[query.1].name
        );
        for ((h, t), cos) in neighbours {
            println!(
                "  cos {:+.3}  ({}, {})",
                cos, ds.world.entities[h].name, ds.world.entities[t].name
            );
        }
        // contrast: analogous pairs vs pairs of a different relation
        let other_rel_pairs: Vec<(usize, usize)> = ds
            .world
            .facts
            .iter()
            .filter(|f| f.relation.0 != rel)
            .map(|f| (f.head.0, f.tail.0))
            .take(200)
            .collect();
        let mean_cos = |cands: &[(usize, usize)]| -> f32 {
            let sims = nearest_pairs(&p.embedding, query, cands, cands.len());
            if sims.is_empty() {
                return 0.0;
            }
            sims.iter().map(|&(_, c)| c).sum::<f32>() / sims.len() as f32
        };
        println!(
            "\nmean MR cosine — same relation: {:.3}, other relations: {:.3}",
            mean_cos(&pairs),
            mean_cos(&other_rel_pairs)
        );
    }
}
