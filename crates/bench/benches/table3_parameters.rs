//! **Table III** — hyperparameter settings: the paper's values next to the
//! CPU-scaled values this reproduction trains with.

use imre_bench::header;
use imre_core::HyperParams;
use imre_eval::format_table;

fn main() {
    header("Table III: parameter settings", "paper Table III");
    let paper = HyperParams::paper();
    let scaled = HyperParams::scaled();
    let rows: Vec<Vec<String>> = paper
        .table3_rows()
        .into_iter()
        .zip(scaled.table3_rows())
        .map(|((sym, desc, pv), (_, _, sv))| vec![sym.to_string(), desc.to_string(), pv, sv])
        .collect();
    println!(
        "{}",
        format_table(
            "(width-like parameters scaled for CPU; scale-free ones kept)",
            &["symbol", "description", "paper", "this repro"],
            &rows,
        )
    );
}
