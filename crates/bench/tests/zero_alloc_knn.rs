//! Strict zero-allocation gate for the warm kNN interpolation path.
//!
//! The serve-level gate (`imre-serve/tests/alloc_steady_state.rs`) pins the
//! engine's pool-miss counter; this test installs a counting
//! `#[global_allocator]` and pins the *process-wide* heap-allocation delta
//! of a warm kNN query — HNSW search, label voting, and score blending —
//! to exactly zero. `AnnIndex::search` returns a slice borrowed from the
//! caller's `SearchScratch`, so once the scratch's beam heaps, visited set,
//! and result buffer have reached steady-state capacity, an interpolated
//! request must not touch the allocator at all.
//!
//! Everything runs in ONE `#[test]` so `IMRE_THREADS=1` can be pinned
//! before any tensor code initialises the lazily-created global compute
//! pool (worker threads would allocate nondeterministically during task
//! claiming).

use imre_ann::{blend_scores, SearchScratch};
use imre_bench::CountingAllocator;
use imre_core::{HyperParams, ModelSpec, PreparedBag};
use imre_eval::{build_index, smoke_config, Pipeline};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn warm_knn_query_performs_zero_heap_allocations() {
    // Must run before the first tensor op of this process (safe:
    // edition-2021 `set_var`, single test fn in this binary).
    std::env::set_var("IMRE_THREADS", "1");

    let hp = HyperParams {
        epochs: 2,
        ..HyperParams::tiny()
    };
    let pipeline = Pipeline::build(&smoke_config(3), hp);
    let model = pipeline.train_system(ModelSpec::pcnn(), 5);
    let index = build_index(&pipeline, &model, 7);
    let num_relations = pipeline.dataset.num_relations();

    // Query vectors and base scores are precomputed: the gate covers the
    // kNN machinery itself (the forward pass has its own zero-alloc gate
    // in `zero_alloc_inference.rs`).
    let ctx = pipeline.ctx();
    let bags: Vec<&PreparedBag> = pipeline.test_bags.iter().take(16).collect();
    assert!(!bags.is_empty(), "smoke split must have test bags");
    let queries: Vec<Vec<f32>> = bags.iter().map(|b| model.predict_repr(b)).collect();
    let bases: Vec<Vec<f32>> = bags.iter().map(|b| model.predict(b, &ctx)).collect();

    let k = 8.min(index.len());
    let mut scratch = SearchScratch::new();
    let mut votes = vec![0.0f32; num_relations];
    let mut scores = vec![0.0f32; num_relations];

    let query = |i: usize, scratch: &mut SearchScratch, votes: &mut [f32], scores: &mut [f32]| {
        let neighbors = index.search(&queries[i], k, scratch);
        index.label_votes_into(neighbors, votes);
        scores.copy_from_slice(&bases[i]);
        blend_scores(scores, votes, 0.3);
        scores[0]
    };

    // Warm-up: let the scratch's heaps/visited-set/result buffer grow to
    // their steady-state capacities across every query shape.
    let mut sink = 0.0f32;
    for round in 0..3 {
        for i in 0..queries.len() {
            sink += query(i, &mut scratch, &mut votes, &mut scores) * (round as f32 + 1.0);
        }
    }

    let reference: Vec<u32> = (0..queries.len())
        .map(|i| query(i, &mut scratch, &mut votes, &mut scores).to_bits())
        .collect();

    let before = CountingAllocator::allocations();
    for _ in 0..25 {
        for (i, &expected) in reference.iter().enumerate() {
            let p = query(i, &mut scratch, &mut votes, &mut scores);
            assert_eq!(
                p.to_bits(),
                expected,
                "warm kNN query must be bit-stable (query {i})"
            );
            sink += p;
        }
    }
    let delta = CountingAllocator::allocations() - before;
    assert_eq!(
        delta,
        0,
        "a warm kNN query must perform zero heap allocations \
         ({delta} allocations across {} queries; checksum {sink})",
        25 * queries.len()
    );
}
