//! Strict zero-allocation gate for the inference tape hot path.
//!
//! Unlike the serve-level gate (which counts buffer-pool misses), this test
//! installs a counting `#[global_allocator]` and pins the *process-wide*
//! heap-allocation delta of a warm forward pass to exactly zero — catching
//! any stray `Vec`/`String`/`Box` on the hot path, not just tensor buffers.
//!
//! Everything runs in ONE `#[test]` so `IMRE_THREADS=1` can be pinned
//! before any tensor code initialises the lazily-created global compute
//! pool (worker threads would allocate nondeterministically during task
//! claiming).

use imre_bench::CountingAllocator;
use imre_nn::{ParamId, ParamStore, Tape};
use imre_tensor::TensorRng;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const DIM: usize = 8;
const INDICES: [usize; 6] = [1, 3, 5, 2, 7, 0];
const SEGMENTS: [(usize, usize); 2] = [(0, 3), (3, 6)];

/// A fixed PCNN-shaped graph: gather → matmul → tanh → piecewise max →
/// matvec → softmax. Returns the first probability as a checksum.
fn forward(tape: &mut Tape, emb: ParamId, w: ParamId, q: ParamId) -> f32 {
    let g = tape.gather(emb, &INDICES);
    let wv = tape.param(w);
    let h = tape.matmul(g, wv);
    let a = tape.tanh(h);
    let p = tape.piecewise_max(a, &SEGMENTS);
    let p = tape.reshape(p, &[SEGMENTS.len(), DIM]);
    let qv = tape.param(q);
    let s = tape.matvec(p, qv);
    let sm = tape.softmax(s);
    tape.value(sm).data()[0]
}

#[test]
fn warm_inference_pass_performs_zero_heap_allocations() {
    // Must run before the first tensor op of this process (safe:
    // edition-2021 `set_var`, single test fn in this binary).
    std::env::set_var("IMRE_THREADS", "1");

    let mut rng = TensorRng::seed(7);
    let mut store = ParamStore::new();
    let emb = store.uniform("emb", &[10, DIM], 0.5, &mut rng);
    let w = store.xavier("w", DIM, DIM, &mut rng);
    let q = store.uniform("q", &[DIM], 0.5, &mut rng);

    let mut tape = Tape::inference(&store);

    // Warm-up: populate the arena and let node/pool vectors reach their
    // steady-state capacities.
    let mut sink = 0.0f32;
    for _ in 0..3 {
        tape.reset();
        sink += forward(&mut tape, emb, w, q);
    }

    let reference = {
        tape.reset();
        forward(&mut tape, emb, w, q)
    };
    let before = CountingAllocator::allocations();
    for _ in 0..100 {
        tape.reset();
        let p = forward(&mut tape, emb, w, q);
        assert_eq!(
            p.to_bits(),
            reference.to_bits(),
            "warm pass must be bit-stable"
        );
        sink += p;
    }
    let delta = CountingAllocator::allocations() - before;
    assert_eq!(
        delta, 0,
        "a warm inference pass must perform zero heap allocations \
         ({delta} allocations across 100 passes; checksum {sink})"
    );

    let (hits, misses) = {
        let s = tape.pool_stats();
        (s.hits, s.misses)
    };
    assert!(hits > 0, "warm passes should be served from the pool");
    assert!(misses > 0, "warm-up itself must have populated the pool");
}
