//! Strict zero-allocation gate for the int8 inference path.
//!
//! Installs a counting `#[global_allocator]` and pins the process-wide
//! heap-allocation delta of a warm `QuantModel::predict_quant_into` call to
//! exactly zero: after warm-up, the recycled [`QuantScratch`] workspaces
//! must absorb every intermediate of the integer forward pass — embeddings,
//! unfolded windows, quantized activation rows, conv outputs, attention
//! scores, and the side components. `scripts/ci.sh quant` runs this test.
//!
//! Everything runs in ONE `#[test]` so `IMRE_THREADS=1` can be pinned
//! before any tensor code initialises the lazily-created global compute
//! pool.

use imre_bench::CountingAllocator;
use imre_core::{
    entity_type_table, prepare_bags, HyperParams, ModelSpec, QuantModel, QuantScratch,
};
use imre_eval::{smoke_config, Pipeline};
use imre_graph::EntityEmbedding;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn warm_quant_inference_pass_performs_zero_heap_allocations() {
    // Must run before the first tensor op of this process (safe:
    // edition-2021 `set_var`, single test fn in this binary).
    std::env::set_var("IMRE_THREADS", "1");

    let hp = HyperParams {
        epochs: 1,
        ..HyperParams::tiny()
    };
    let pipeline = Pipeline::build(&smoke_config(5), hp.clone());
    // PA-TMR exercises every component of the quant path: PCNN encoder,
    // per-relation attention, the MR head, and the type head + combiner.
    let model = pipeline.train_system(ModelSpec::pa_tmr(), 11);
    let embedding = EntityEmbedding::from_matrix(pipeline.embedding.matrix().clone());
    let qm = QuantModel::from_model(&model, Some(&embedding)).expect("quantizes");
    let types = entity_type_table(&pipeline.dataset.world);
    let bags = prepare_bags(&pipeline.dataset.test, &hp);
    let bags = &bags[..bags.len().min(8)];

    let mut scratch = QuantScratch::new();
    let mut scores = vec![0.0f32; qm.num_relations];
    let mut repr = vec![0.0f32; qm.sent_dim()];

    // Warm-up: every bag shape passes through the scratch workspaces until
    // their capacities reach steady state.
    for _ in 0..3 {
        for bag in bags {
            qm.predict_quant_into(bag, &types, &mut scratch, &mut scores, Some(&mut repr));
        }
    }

    let reference: Vec<u32> = {
        qm.predict_quant_into(&bags[0], &types, &mut scratch, &mut scores, None);
        scores.iter().map(|s| s.to_bits()).collect()
    };

    let before = CountingAllocator::allocations();
    let mut sink = 0.0f32;
    for _ in 0..25 {
        for bag in bags {
            qm.predict_quant_into(bag, &types, &mut scratch, &mut scores, Some(&mut repr));
            sink += scores[0] + repr[0];
        }
    }
    let delta = CountingAllocator::allocations() - before;
    assert_eq!(
        delta,
        0,
        "a warm int8 inference pass must perform zero heap allocations \
         ({delta} allocations across {} passes; checksum {sink})",
        25 * bags.len()
    );

    // And bit-stability: a warm pass reproduces the reference exactly.
    qm.predict_quant_into(&bags[0], &types, &mut scratch, &mut scores, None);
    let bits: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
    assert_eq!(bits, reference, "warm int8 pass must be bit-stable");
}
