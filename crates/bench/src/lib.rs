//! # imre-bench
//!
//! Shared plumbing for the experiment benches. Each `benches/<target>.rs`
//! regenerates one table or figure of the paper and prints the same
//! rows/series the paper reports; see `DESIGN.md` §4 for the full index.
//!
//! Run everything with `cargo bench --workspace`, or a single experiment
//! with e.g. `cargo bench -p imre-bench --bench table4_performance`.
//!
//! ## Environment knobs
//!
//! | Variable | Default | Effect |
//! |---|---|---|
//! | `IMRE_SEEDS` | 1 | seeds averaged per system (paper uses 5) |
//! | `IMRE_EPOCHS` | preset | training epochs override |
//! | `IMRE_FAST` | unset | set to any value for a quick smoke-scale run |

use imre_core::HyperParams;
use imre_corpus::DatasetConfig;
use imre_eval::Pipeline;

/// Number of seeds to average, from `IMRE_SEEDS` (default 1).
pub fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("IMRE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    (0..n.max(1)).map(|i| 100 + i * 37).collect()
}

/// Whether `IMRE_FAST` requests smoke-scale experiments.
pub fn fast_mode() -> bool {
    std::env::var("IMRE_FAST").is_ok()
}

/// The hyperparameters used by all experiment benches: the paper's scaled
/// settings, with an `IMRE_EPOCHS` override.
pub fn bench_hp() -> HyperParams {
    let mut hp = HyperParams::scaled();
    if let Some(e) = std::env::var("IMRE_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        hp.epochs = e;
    }
    hp
}

/// The two evaluation datasets (NYT-sim, GDS-sim) — or smoke-scale stand-ins
/// under `IMRE_FAST`.
pub fn dataset_configs() -> Vec<DatasetConfig> {
    if fast_mode() {
        let mut a = imre_eval::smoke_config(1);
        a.name = "NYT-sim(fast)".into();
        let mut b = imre_eval::smoke_config(2);
        b.name = "GDS-sim(fast)".into();
        vec![a, b]
    } else {
        vec![imre_corpus::nyt_sim(1), imre_corpus::gds_sim(2)]
    }
}

/// Builds the pipeline for one dataset config with the bench hyperparams.
pub fn build_pipeline(config: &DatasetConfig) -> Pipeline {
    Pipeline::build(config, bench_hp())
}

/// Prints the standard bench header.
pub fn header(experiment: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{experiment}  (reproduces {paper_ref})");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_default_and_positive() {
        let s = seeds();
        assert!(!s.is_empty());
    }

    #[test]
    fn dataset_configs_named() {
        // note: reads env; both branches produce two configs
        let cfgs = dataset_configs();
        assert_eq!(cfgs.len(), 2);
    }
}
