//! # imre-bench
//!
//! Shared plumbing for the experiment benches. Each `benches/<target>.rs`
//! regenerates one table or figure of the paper and prints the same
//! rows/series the paper reports; see `DESIGN.md` §4 for the full index.
//!
//! Run everything with `cargo bench --workspace`, or a single experiment
//! with e.g. `cargo bench -p imre-bench --bench table4_performance`.
//!
//! ## Environment knobs
//!
//! | Variable | Default | Effect |
//! |---|---|---|
//! | `IMRE_SEEDS` | 1 | seeds averaged per system (paper uses 5) |
//! | `IMRE_EPOCHS` | preset | training epochs override |
//! | `IMRE_FAST` | unset | set to any value for a quick smoke-scale run |

use imre_core::HyperParams;
use imre_corpus::DatasetConfig;
use imre_eval::Pipeline;

/// Number of seeds to average, from `IMRE_SEEDS` (default 1).
pub fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("IMRE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    (0..n.max(1)).map(|i| 100 + i * 37).collect()
}

/// Whether `IMRE_FAST` requests smoke-scale experiments.
pub fn fast_mode() -> bool {
    std::env::var("IMRE_FAST").is_ok()
}

/// The hyperparameters used by all experiment benches: the paper's scaled
/// settings, with an `IMRE_EPOCHS` override.
pub fn bench_hp() -> HyperParams {
    let mut hp = HyperParams::scaled();
    if let Some(e) = std::env::var("IMRE_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        hp.epochs = e;
    }
    hp
}

/// The two evaluation datasets (NYT-sim, GDS-sim) — or smoke-scale stand-ins
/// under `IMRE_FAST`.
pub fn dataset_configs() -> Vec<DatasetConfig> {
    if fast_mode() {
        let mut a = imre_eval::smoke_config(1);
        a.name = "NYT-sim(fast)".into();
        let mut b = imre_eval::smoke_config(2);
        b.name = "GDS-sim(fast)".into();
        vec![a, b]
    } else {
        vec![imre_corpus::nyt_sim(1), imre_corpus::gds_sim(2)]
    }
}

/// Builds the pipeline for one dataset config with the bench hyperparams.
pub fn build_pipeline(config: &DatasetConfig) -> Pipeline {
    Pipeline::build(config, bench_hp())
}

/// Prints the standard bench header.
pub fn header(experiment: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{experiment}  (reproduces {paper_ref})");
    println!("================================================================");
}

/// Machine-readable metric sink for the CI bench-regression gate.
///
/// Benches record flat `key -> f64` metrics and call
/// [`MetricSink::write_if_requested`] at the end of their run; when the
/// `IMRE_BENCH_JSON` environment variable names a file, the metrics are
/// written there as a flat JSON object with one `"key": value` pair per
/// line (the format `scripts/bench_check.sh` merges and diffs). Without the
/// variable the sink is a no-op, so interactive `cargo bench` runs never
/// touch the filesystem.
///
/// Key conventions enforced by the regression gate:
/// - keys ending in `_ns` are lower-is-better (latencies); everything else
///   is higher-is-better (throughput);
/// - keys starting with `info_` are informational only and never gate
///   (e.g. speedup ratios that depend on the core count of the machine).
#[derive(Debug, Default)]
pub struct MetricSink {
    metrics: Vec<(String, f64)>,
}

impl MetricSink {
    /// An empty sink.
    pub fn new() -> MetricSink {
        MetricSink::default()
    }

    /// Records one metric; keys must be unique per sink.
    pub fn record(&mut self, key: &str, value: f64) {
        assert!(
            !self.metrics.iter().any(|(k, _)| k == key),
            "duplicate bench metric key: {key}"
        );
        self.metrics.push((key.to_string(), value));
    }

    /// The metrics rendered as a flat JSON object, one pair per line.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            // `{v}` prints the shortest round-trip f64 repr, which is valid
            // JSON for all finite values; benches never record NaN/inf.
            out.push_str(&format!("  \"{k}\": {v}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Writes the JSON dump to the file named by `IMRE_BENCH_JSON`, if set.
    ///
    /// # Panics
    /// When the file cannot be written — in CI a silently missing metrics
    /// file would make the regression gate vacuously pass.
    pub fn write_if_requested(&self) {
        if let Ok(path) = std::env::var("IMRE_BENCH_JSON") {
            if path.is_empty() {
                return;
            }
            std::fs::write(&path, self.to_json())
                .unwrap_or_else(|e| panic!("IMRE_BENCH_JSON: cannot write {path}: {e}"));
            println!("bench metrics written to {path}");
        }
    }
}

/// A `std::alloc::System` wrapper that counts heap allocations, for
/// install as a test binary's `#[global_allocator]`.
///
/// `alloc`, `alloc_zeroed`, and growth `realloc` each count as one
/// allocation; `dealloc` is free. The zero-allocation inference test
/// (`tests/zero_alloc_inference.rs`) uses the delta of
/// [`CountingAllocator::allocations`] across a warm forward pass to pin the
/// steady-state allocation budget of the tape hot path to exactly zero —
/// a stricter, process-global check than the pool-miss counters the serve
/// metrics report.
pub use alloc_counter::CountingAllocator;

mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// See the re-export docs on [`crate::CountingAllocator`].
    pub struct CountingAllocator;

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    impl CountingAllocator {
        /// Total heap allocations since process start.
        pub fn allocations() -> u64 {
            ALLOCATIONS.load(Ordering::Relaxed)
        }
    }

    // SAFETY: pure delegation to `System`; the counter is a relaxed atomic
    // and never allocates, so the impl upholds `GlobalAlloc`'s contract
    // wherever `System` does.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_default_and_positive() {
        let s = seeds();
        assert!(!s.is_empty());
    }

    #[test]
    fn dataset_configs_named() {
        // note: reads env; both branches produce two configs
        let cfgs = dataset_configs();
        assert_eq!(cfgs.len(), 2);
    }

    #[test]
    fn metric_sink_renders_flat_json() {
        let mut sink = MetricSink::new();
        sink.record("matmul_gflops", 1.5);
        sink.record("dispatch_inline_ns", 42.0);
        let json = sink.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("  \"matmul_gflops\": 1.5,\n"));
        assert!(json.contains("  \"dispatch_inline_ns\": 42\n"));
    }

    #[test]
    #[should_panic(expected = "duplicate bench metric key")]
    fn metric_sink_rejects_duplicate_keys() {
        let mut sink = MetricSink::new();
        sink.record("k", 1.0);
        sink.record("k", 2.0);
    }
}
