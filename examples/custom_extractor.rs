//! Building a relation extractor for your *own* domain with the public
//! API — the scenario a downstream adopter cares about: define a world
//! (entities, types, relations), generate/ingest distant-supervision data,
//! pick a model variant, train, predict.
//!
//! Here: a small biomedical-flavoured schema (drugs, diseases, genes).
//!
//! ```text
//! cargo run --release --example custom_extractor
//! ```

use imre::core::{
    entity_type_table, prepare_bags, train_model, BagContext, HyperParams, ModelSpec, ReModel,
    TrainConfig,
};
use imre::corpus::{Dataset, DatasetConfig, SentenceGenConfig, WorldConfig};
use imre::eval::evaluate_system;

fn main() {
    println!("custom-domain relation extractor\n");

    // 1. Describe the corpus. In a real deployment you would implement the
    //    same `Bag`/`EncodedSentence` structures from your own data; here
    //    the generator plays that role with a custom configuration.
    let config = DatasetConfig {
        name: "biomed-demo".into(),
        world: WorldConfig {
            n_relations: 7, // e.g. treats, causes, inhibits, …
            entities_per_cluster: 12,
            facts_per_relation: 40,
            cluster_reuse_prob: 0.4,
            seed: 2024,
        },
        sentence: SentenceGenConfig {
            noise_prob: 0.25,
            min_len: 8,
            max_len: 20,
        },
        train_fraction: 0.75,
        na_train: 150,
        na_test: 60,
        na_hard_fraction: 0.5,
        zipf_alpha: 1.9,
        max_sentences_per_bag: 15,
        seed: 99,
    };
    let dataset = Dataset::generate(&config);
    println!(
        "corpus: {} train bags / {} test bags, {} relations",
        dataset.train.len(),
        dataset.test.len(),
        dataset.num_relations()
    );

    // 2. Featurise and train a GRU+ATT extractor (any `ModelSpec` works).
    let mut hp = HyperParams::tiny();
    hp.epochs = 10;
    // recurrent encoders converge in SGD steps, not sentences — small
    // batches give them enough updates on a small corpus (DESIGN.md §4b.4)
    hp.batch_size = 2;
    let train_bags = prepare_bags(&dataset.train, &hp);
    let test_bags = prepare_bags(&dataset.test, &hp);
    let types = entity_type_table(&dataset.world);
    let ctx = BagContext {
        entity_embedding: None,
        entity_types: &types,
    };

    let mut model = ReModel::new(
        ModelSpec::gru_att(),
        &hp,
        dataset.vocab.len(),
        dataset.num_relations(),
        imre::corpus::NUM_COARSE_TYPES,
        hp.entity_dim,
        7,
    );
    let stats = train_model(
        &mut model,
        &train_bags,
        &ctx,
        &TrainConfig::from_hp(&hp, 13),
    );
    println!("trained GRU+ATT: per-epoch loss {:?}", stats.epoch_losses);

    // 3. Evaluate and inspect one prediction.
    let ev = evaluate_system(&test_bags, dataset.num_relations(), |bag| {
        model.predict(bag, &ctx)
    });
    println!("held-out AUC {:.4}, F1 {:.4}", ev.auc, ev.f1);

    let bag = test_bags
        .iter()
        .find(|b| b.label != 0)
        .expect("a relational test bag");
    let scores = model.predict(bag, &ctx);
    let best = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("scores");
    println!(
        "\nexample: ({}, {}) → predicted {}, gold {}",
        dataset.world.entities[bag.head].name,
        dataset.world.entities[bag.tail].name,
        dataset.world.relations[best].name,
        dataset.world.relations[bag.label].name,
    );
}
