//! Quickstart: the whole system on a small corpus in under a minute.
//!
//! Builds a distant-supervision dataset, mines the implicit mutual
//! relations from the unlabeled corpus (proximity graph → LINE), trains the
//! paper's PA-TMR model next to its PCNN+ATT base, and prints held-out
//! metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use imre::core::{HyperParams, ModelSpec};
use imre::eval::{smoke_config, Pipeline};

fn main() {
    println!("imre quickstart — Kuang et al., ICDE 2020 reproduction\n");

    // 1. Build everything the experiment needs: dataset, unlabeled corpus,
    //    proximity graph, LINE entity embeddings, featurised bags.
    let mut hp = HyperParams::scaled();
    hp.epochs = 10;
    hp.batch_size = 8;
    let pipeline = Pipeline::build(&smoke_config(7), hp);
    println!(
        "dataset: {} train bags, {} test bags, {} relations, vocab {}",
        pipeline.train_bags.len(),
        pipeline.test_bags.len(),
        pipeline.dataset.num_relations(),
        pipeline.dataset.vocab.len(),
    );
    println!(
        "entity embeddings: {} entities × {} dims (LINE over the proximity graph)\n",
        pipeline.embedding.len(),
        pipeline.embedding.dim()
    );

    // 2. Train the base model and the paper's full model.
    for spec in [ModelSpec::pcnn_att(), ModelSpec::pa_tmr()] {
        let ev = pipeline.run_system(spec, 42);
        println!(
            "{:<9}  AUC {:.4}  F1 {:.4}  P@100 {:.2}",
            spec.name(),
            ev.auc,
            ev.f1,
            ev.p_at_100
        );
    }
    println!("\nPA-TMR = PCNN+ATT + entity types + implicit mutual relations (paper §III-D).");
}
