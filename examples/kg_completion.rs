//! Knowledge-graph completion — the paper's motivating application
//! (§I: "extract factual triplets from plain text for KG completion").
//!
//! Trains PA-TMR on the NYT-like corpus, then sweeps the held-out bags,
//! emitting the new `(head, relation, tail)` triplets the model is most
//! confident about — exactly how a downstream KG team would consume this
//! library — and reports how many of them the (held-out) KG confirms.
//!
//! ```text
//! cargo run --release --example kg_completion
//! ```

use imre::core::{HyperParams, ModelSpec};
use imre::eval::Pipeline;

fn main() {
    println!("KG completion with PA-TMR\n");
    let mut hp = HyperParams::scaled();
    hp.epochs = 6;
    let pipeline = Pipeline::build(&imre::corpus::nyt_sim(11), hp);
    let model = pipeline.train_system(ModelSpec::pa_tmr(), 42);
    let ctx = pipeline.ctx();

    // Score every candidate (pair, relation) on the held-out bags.
    let mut candidates: Vec<(f32, usize, usize, usize)> = Vec::new();
    for bag in &pipeline.test_bags {
        let scores = model.predict(bag, &ctx);
        for (r, &s) in scores.iter().enumerate().skip(1) {
            candidates.push((s, bag.head, bag.tail, r));
        }
    }
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));

    println!("top 15 extracted triplets:");
    println!(
        "{:<7} {:<28} {:<38} {:<28} in KG?",
        "score", "head", "relation", "tail"
    );
    let world = &pipeline.dataset.world;
    let mut hits = 0;
    for &(score, h, t, r) in candidates.iter().take(15) {
        let gold = world
            .relation_of(imre::corpus::EntityId(h), imre::corpus::EntityId(t))
            .map(|rel| rel.0 == r)
            .unwrap_or(false);
        hits += gold as usize;
        println!(
            "{score:<7.3} {:<28} {:<38} {:<28} {}",
            world.entities[h].name,
            world.relations[r].name,
            world.entities[t].name,
            if gold { "yes" } else { "no" }
        );
    }
    println!(
        "\n{hits}/15 of the top extractions are confirmed KG facts (precision@15 = {:.2})",
        hits as f32 / 15.0
    );
}
