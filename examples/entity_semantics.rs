//! Exploring the implicit-mutual-relation space (the paper's §IV-E case
//! study, interactive form): nearest neighbours of entities in the LINE
//! embedding, and relation analogies via mutual-relation vectors.
//!
//! ```text
//! cargo run --release --example entity_semantics
//! ```

use imre::core::HyperParams;
use imre::eval::Pipeline;
use imre::graph::{nearest, nearest_pairs};

fn main() {
    println!("entity semantics from the proximity graph\n");
    let pipeline = Pipeline::build(&imre::corpus::nyt_sim(11), HyperParams::scaled());
    let world = &pipeline.dataset.world;
    let emb = &pipeline.embedding;

    // 1. Nearest neighbours of the paper's case-study entities.
    for name in ["Seattle", "University_of_Washington", "Barack_Obama"] {
        let Some(id) = world.entity_by_name(name) else {
            continue;
        };
        println!("nearest to {name}:");
        for (v, cos) in nearest(emb, id.0, 5) {
            println!("   {:+.3}  {}", cos, world.entities[v].name);
        }
        println!();
    }

    // 2. Analogy through mutual-relation vectors: pairs whose U_t − U_h is
    //    closest to (University_of_Washington, Seattle)'s.
    let (Some(uw), Some(sea)) = (
        world.entity_by_name("University_of_Washington"),
        world.entity_by_name("Seattle"),
    ) else {
        println!("case-study entities not in this world");
        return;
    };
    let all_pairs: Vec<(usize, usize)> = world.facts.iter().map(|f| (f.head.0, f.tail.0)).collect();
    println!("pairs with mutual relations most similar to (University_of_Washington, Seattle):");
    for ((h, t), cos) in nearest_pairs(emb, (uw.0, sea.0), &all_pairs, 6) {
        let rel = world
            .relation_of(imre::corpus::EntityId(h), imre::corpus::EntityId(t))
            .map(|r| world.relations[r.0].name.clone())
            .unwrap_or_else(|| "NA".into());
        println!(
            "   {:+.3}  ({}, {})  [{}]",
            cos, world.entities[h].name, world.entities[t].name, rel
        );
    }
    println!("\n(paper Table V: semantically similar entities are close; analogous pairs share mutual relations)");
}
